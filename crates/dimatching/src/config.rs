//! Protocol configuration.

use dipm_core::{tagged_key, FilterParams};
use dipm_timeseries::ToleranceMode;

use crate::error::{ProtocolError, Result};

/// What the hash functions see for each sampled point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum HashScheme {
    /// Hash the accumulated value alone — the paper's design: the
    /// accumulation transform already encodes time order (default).
    #[default]
    ValueOnly,
    /// Hash `(sample position, accumulated value)` pairs — an ablation that
    /// strictly reduces cross-position false positives, quantifying how much
    /// of the ordering information accumulation alone recovers.
    PositionTagged,
}

impl HashScheme {
    /// The probe key for a sampled point.
    #[inline]
    pub fn key(self, sample_index: usize, value: u64) -> u64 {
        match self {
            HashScheme::ValueOnly => value,
            HashScheme::PositionTagged => tagged_key(sample_index as u32, value),
        }
    }
}

/// How the station-side shard scan bounds and prunes its work.
///
/// The ladder mirrors the classic retrieval-algorithm family: every rung
/// adds a tighter score upper bound and skips strictly more work, and every
/// rung is **result-exact** — pruned rows are rows whose bound proves they
/// cannot contribute, so reports, rankings and byte meters are bit-identical
/// to [`ScanAlgorithm::Exhaustive`] under every execution mode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ScanAlgorithm {
    /// Score every surviving row against every section (default; the PR 6
    /// scan core unchanged).
    #[default]
    Exhaustive,
    /// Static per-section score upper bounds: a section whose weight
    /// universe cannot produce a reportable weight (or cannot beat a full
    /// top-k heap's threshold) is switched off for the whole shard.
    MaxScore,
    /// MaxScore plus a per-row dynamic bound: the row's sampled volume is
    /// tested against the plausible-weight window before any hashing.
    Wand,
    /// Wand plus per-block max metadata: fixed-size row blocks carry volume
    /// ranges, and blocks whose bound cannot contribute are skipped whole.
    BlockMaxWand,
}

impl ScanAlgorithm {
    /// Every algorithm, from no pruning to the most aggressive.
    pub const ALL: [ScanAlgorithm; 4] = [
        ScanAlgorithm::Exhaustive,
        ScanAlgorithm::MaxScore,
        ScanAlgorithm::Wand,
        ScanAlgorithm::BlockMaxWand,
    ];

    /// Whether statically dead sections are switched off shard-wide.
    #[inline]
    pub fn prunes_sections(self) -> bool {
        self != ScanAlgorithm::Exhaustive
    }

    /// Whether individual rows are tested against a dynamic score bound.
    #[inline]
    pub fn prunes_rows(self) -> bool {
        matches!(self, ScanAlgorithm::Wand | ScanAlgorithm::BlockMaxWand)
    }

    /// Whether whole row blocks can be skipped via block-max metadata.
    #[inline]
    pub fn prunes_blocks(self) -> bool {
        self == ScanAlgorithm::BlockMaxWand
    }
}

/// How the data center decides which stations receive a query broadcast.
///
/// Orthogonal to `FilterStrategy` × `ExecutionMode` × [`ScanAlgorithm`]:
/// routing is a center-side decision made **before** any station work is
/// scheduled, so it is mode-invariant by construction, and every policy is
/// conformance-pinned to produce the same rankings as broadcasting to all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RoutingPolicy {
    /// Every station receives every query broadcast — the paper's cost
    /// model (default).
    #[default]
    BroadcastAll,
    /// A Bloofi-style tree of OR-merged station summary filters: the center
    /// descends only into subtrees whose union summary can match the
    /// query's probe keys, and only the surviving leaf stations receive the
    /// broadcast. Falls back to broadcast when the tree is degenerate
    /// (fewer than two stations).
    Tree {
        /// Children per interior node; must be at least 2.
        fanout: usize,
    },
}

impl RoutingPolicy {
    /// Both policies, broadcast first.
    pub const ALL: [RoutingPolicy; 2] = [
        RoutingPolicy::BroadcastAll,
        RoutingPolicy::Tree { fanout: 4 },
    ];

    /// Whether this policy can exclude stations from a broadcast.
    #[inline]
    pub fn prunes_stations(self) -> bool {
        matches!(self, RoutingPolicy::Tree { .. })
    }
}

/// Admission backpressure for the multi-tenant [`Service`](crate::Service):
/// how much update traffic each station's downlink accepts per service
/// epoch.
///
/// Admission is decided center-side before any frame flies, from each
/// tenant's *planned* update bytes (routing-blind, so the budget holds even
/// if every station ends up targeted). A tenant that does not fit is
/// **deferred, never dropped**: its session is left untouched — pending
/// query churn simply accumulates into the next epoch's delta — and the
/// deferral is recorded on its [`deferred_epochs`] meter.
///
/// [`deferred_epochs`]: dipm_distsim::CostReport::deferred_epochs
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AdmissionPolicy {
    /// Per-station in-flight budget in bytes per service epoch. `None`
    /// (the default) admits every tenant. The first tenant claiming an
    /// idle station link is always admitted even over budget, so an
    /// over-sized full broadcast still makes progress; each further tenant
    /// is admitted only if every station link stays within budget.
    pub per_station_budget_bytes: Option<u64>,
}

impl AdmissionPolicy {
    /// A policy with a per-station budget of `bytes` per epoch.
    pub fn per_station(bytes: u64) -> AdmissionPolicy {
        AdmissionPolicy {
            per_station_budget_bytes: Some(bytes),
        }
    }

    /// Whether this policy can defer tenants at all.
    #[inline]
    pub fn limits(&self) -> bool {
        self.per_station_budget_bytes.is_some()
    }
}

/// Configuration of one DI-matching run.
///
/// A passive parameter block: fields are public and a [`Default`] matching
/// the paper's settings is provided (`b = 12` samples per Section V-B,
/// `ε = 2`, 1 % target false-positive rate). Call
/// [`DiMatchingConfig::validate`] before use; the pipeline does so on entry.
///
/// # Examples
///
/// ```
/// use dipm_protocol::DiMatchingConfig;
///
/// let mut config = DiMatchingConfig::default();
/// config.eps = 3;
/// assert!(config.validate().is_ok());
/// assert_eq!(config.samples, 12); // the paper's converged b
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DiMatchingConfig {
    /// Number of sampled points per pattern (`b`); the paper converges at 12.
    pub samples: usize,
    /// Per-interval similarity tolerance (`ε` of Eq. 2).
    pub eps: u64,
    /// Target false-positive probability used to size the filter.
    pub target_fpp: f64,
    /// Lower bound on the filter size in bits (keeps tiny queries sane).
    pub min_bits: usize,
    /// Pins the filter geometry instead of sizing it from the query set.
    /// `None` (the default) derives the geometry from the distinct key
    /// count, `target_fpp` and `min_bits`. Streaming sessions pin the
    /// geometry they started with — incremental updates cannot resize a
    /// filter — and equivalence tests pin it to compare an incrementally
    /// maintained filter against a from-scratch build.
    pub fixed_geometry: Option<FilterParams>,
    /// What the hash functions see per sampled point.
    pub hash_scheme: HashScheme,
    /// How ε expands into bands over accumulated samples.
    pub tolerance: ToleranceMode,
    /// How the shard scan bounds and prunes its work (result-exact; the
    /// default scores everything).
    pub scan_algorithm: ScanAlgorithm,
    /// How the center decides which stations receive a query broadcast
    /// (result-exact; the default broadcasts to all).
    pub routing: RoutingPolicy,
    /// Seed for the filter's hash family; broadcast in the filter header.
    pub seed: u64,
}

impl Default for DiMatchingConfig {
    fn default() -> Self {
        DiMatchingConfig {
            samples: 12,
            eps: 2,
            target_fpp: 0.01,
            min_bits: 1 << 10,
            fixed_geometry: None,
            hash_scheme: HashScheme::ValueOnly,
            tolerance: ToleranceMode::Accumulated,
            scan_algorithm: ScanAlgorithm::Exhaustive,
            routing: RoutingPolicy::BroadcastAll,
            seed: 0xD1_4A7C,
        }
    }
}

impl DiMatchingConfig {
    /// Checks the configuration for internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::InvalidConfig`] if `samples` is zero,
    /// `target_fpp` is outside `(0, 1)` or `min_bits` is zero.
    pub fn validate(&self) -> Result<()> {
        if self.samples == 0 {
            return Err(ProtocolError::invalid_config("samples must be non-zero"));
        }
        if !(self.target_fpp > 0.0 && self.target_fpp < 1.0) {
            return Err(ProtocolError::invalid_config(
                "target false-positive probability must lie in (0, 1)",
            ));
        }
        if self.min_bits == 0 {
            return Err(ProtocolError::invalid_config("min_bits must be non-zero"));
        }
        if let RoutingPolicy::Tree { fanout } = self.routing {
            if fanout < 2 {
                return Err(ProtocolError::invalid_config(
                    "routing tree fanout must be at least 2",
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_settings() {
        let c = DiMatchingConfig::default();
        assert_eq!(c.samples, 12);
        assert_eq!(c.hash_scheme, HashScheme::ValueOnly);
        assert_eq!(c.tolerance, ToleranceMode::Accumulated);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_values() {
        let c = DiMatchingConfig {
            samples: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());

        let c = DiMatchingConfig {
            target_fpp: 0.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());

        let c = DiMatchingConfig {
            target_fpp: 1.5,
            ..Default::default()
        };
        assert!(c.validate().is_err());

        let c = DiMatchingConfig {
            min_bits: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());

        for fanout in [0, 1] {
            let c = DiMatchingConfig {
                routing: RoutingPolicy::Tree { fanout },
                ..Default::default()
            };
            assert!(c.validate().is_err(), "fanout {fanout} must be rejected");
        }
    }

    #[test]
    fn routing_policy_axis() {
        assert_eq!(RoutingPolicy::default(), RoutingPolicy::BroadcastAll);
        assert_eq!(
            DiMatchingConfig::default().routing,
            RoutingPolicy::BroadcastAll
        );
        assert!(!RoutingPolicy::BroadcastAll.prunes_stations());
        assert!(RoutingPolicy::Tree { fanout: 2 }.prunes_stations());
        for policy in RoutingPolicy::ALL {
            let c = DiMatchingConfig {
                routing: policy,
                ..Default::default()
            };
            assert!(c.validate().is_ok(), "{policy:?} must validate");
        }
    }

    #[test]
    fn scan_algorithm_ladder_is_monotone() {
        assert_eq!(ScanAlgorithm::default(), ScanAlgorithm::Exhaustive);
        assert_eq!(
            DiMatchingConfig::default().scan_algorithm,
            ScanAlgorithm::Exhaustive
        );
        // Each rung prunes at least everything the previous rung prunes.
        let mut prev = (false, false, false);
        for algo in ScanAlgorithm::ALL {
            let cur = (
                algo.prunes_sections(),
                algo.prunes_rows(),
                algo.prunes_blocks(),
            );
            assert!(
                prev.0 <= cur.0 && prev.1 <= cur.1 && prev.2 <= cur.2,
                "{algo:?}"
            );
            prev = cur;
        }
        assert!(!ScanAlgorithm::Exhaustive.prunes_sections());
        assert!(ScanAlgorithm::BlockMaxWand.prunes_blocks());
    }

    #[test]
    fn value_only_keys_ignore_position() {
        assert_eq!(
            HashScheme::ValueOnly.key(0, 42),
            HashScheme::ValueOnly.key(5, 42)
        );
    }

    #[test]
    fn position_tagged_keys_distinguish_position() {
        assert_ne!(
            HashScheme::PositionTagged.key(0, 42),
            HashScheme::PositionTagged.key(1, 42)
        );
    }
}
