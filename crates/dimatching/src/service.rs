//! The multi-tenant standing-query service: many concurrent
//! [`StreamingSession`]s multiplexed over one executor and one simulated
//! station deployment.
//!
//! A [`Service`] is the long-lived shape of the streaming layer: each
//! tenant registers its own standing-query session (own filter geometry,
//! own counting filter, own epoch counter), and every service epoch runs
//! all admitted tenants *interleaved* — one shared executor, one shared
//! virtual clock, shared per-station downlinks — instead of one session at
//! a time.
//!
//! Three properties make the multiplexing safe to reason about:
//!
//! * **Isolation by construction.** Every tenant runs on its own simulated
//!   [`Network`](dipm_distsim::Network) with its own meter, through exactly
//!   the code a solo [`StreamingSession::run_epoch`] runs — the solo path
//!   *is* the one-tenant call of the shared engine. A tenant's
//!   mode-invariant [`CostReport`](dipm_distsim::CostReport) is therefore
//!   byte-identical whether it runs alone or beside any number of noisy
//!   neighbors, under every [`ExecutionMode`](dipm_distsim::ExecutionMode);
//!   only modeled *latency* couples tenants, because concurrent frames
//!   genuinely queue on the shared station links.
//! * **Checkpoint / recovery.** [`Service::checkpoint`] serializes every
//!   tenant's center state into one versioned frame family; a restarted
//!   center ([`Service::recover_tenant`]) resyncs stations via deltas
//!   against the filters they retained, instead of re-broadcasting
//!   everything — the economics `repro service` measures.
//! * **Admission backpressure.** An [`AdmissionPolicy`] bounds each
//!   station's per-epoch update bytes; over-budget tenants are deferred to
//!   the next epoch with their [`deferred_epochs`] meter ticked, never
//!   silently dropped, and longest-deferred tenants are admitted first so
//!   backpressure cannot starve anyone.
//!
//! [`deferred_epochs`]: dipm_distsim::CostReport::deferred_epochs

use std::collections::BTreeMap;

use bytes::Bytes;
use dipm_distsim::{CostMeter, CostReport};
use dipm_mobilenet::Dataset;

use crate::config::{AdmissionPolicy, DiMatchingConfig};
use crate::error::{ProtocolError, Result};
use crate::pipeline::PipelineOptions;
use crate::query::PatternQuery;
use crate::streaming::{
    run_interleaved_epochs, EpochOutcome, StationMemory, StreamQueryId, StreamingSession,
};
use crate::wire;

/// Identifies one tenant of a [`Service`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u64);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant {}", self.0)
    }
}

/// One tenant: its session plus the service-side bookkeeping that outlives
/// individual epochs.
#[derive(Debug)]
struct Tenant {
    session: StreamingSession,
    /// Lifetime cost ledger: every epoch's report absorbed, deferrals
    /// included. Makespans join by maximum (they share one timeline).
    ledger: CostMeter,
    /// Consecutive epochs this tenant has been deferred — the admission
    /// priority key that makes backpressure starvation-free.
    deferred_streak: u64,
}

/// The result of one service epoch: each admitted tenant's
/// [`EpochOutcome`], and who was deferred.
#[derive(Debug)]
pub struct ServiceEpoch {
    /// Per-tenant outcomes, for every tenant admitted this epoch.
    pub outcomes: BTreeMap<TenantId, EpochOutcome>,
    /// Tenants deferred by admission, in the order they were considered.
    /// Their sessions are untouched; their pending churn rides the next
    /// epoch's delta.
    pub deferred: Vec<TenantId>,
}

/// A long-lived multi-tenant standing-query service. See the
/// [module docs](self) for the isolation, recovery and admission
/// guarantees.
///
/// # Examples
///
/// ```
/// use dipm_mobilenet::Dataset;
/// use dipm_protocol::{
///     DiMatchingConfig, PatternQuery, PipelineOptions, Service, TenantId,
/// };
///
/// # fn main() -> Result<(), dipm_protocol::ProtocolError> {
/// let day = Dataset::small(7);
/// let query = |i: usize| {
///     PatternQuery::from_fragments(day.fragments(day.users()[i].id).unwrap())
/// };
///
/// let mut service = Service::new(PipelineOptions::default());
/// service.register(TenantId(0), &[query(0)?], DiMatchingConfig::default())?;
/// service.register(TenantId(1), &[query(3)?], DiMatchingConfig::default())?;
///
/// let epoch = service.run_epoch(&day)?;
/// assert_eq!(epoch.outcomes.len(), 2);
/// assert!(epoch.deferred.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Service {
    options: PipelineOptions,
    admission: AdmissionPolicy,
    tenants: BTreeMap<TenantId, Tenant>,
    /// Per-station downlink high-water marks (virtual ticks), carried
    /// across epochs: a station's link stays claimed until the tick it
    /// finished serializing its last frame.
    links: Vec<u64>,
}

impl Service {
    /// A service with no admission limits.
    pub fn new(options: PipelineOptions) -> Service {
        Service::with_admission(options, AdmissionPolicy::default())
    }

    /// A service with an explicit [`AdmissionPolicy`].
    pub fn with_admission(options: PipelineOptions, admission: AdmissionPolicy) -> Service {
        Service {
            options,
            admission,
            tenants: BTreeMap::new(),
            links: Vec::new(),
        }
    }

    /// The service's shared execution options. Every tenant session runs
    /// under these — a shared executor needs one mode, one latency model
    /// and one shard layout.
    pub fn options(&self) -> &PipelineOptions {
        &self.options
    }

    /// The service's admission policy.
    pub fn admission(&self) -> AdmissionPolicy {
        self.admission
    }

    /// The registered tenants, in id order.
    pub fn tenants(&self) -> Vec<TenantId> {
        self.tenants.keys().copied().collect()
    }

    /// Registers a new tenant with its initial standing-query set. The
    /// tenant's filter geometry is pinned here, exactly like a solo
    /// [`StreamingSession::new`].
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::DuplicateTenant`] if `id` is already
    /// registered (the existing tenant is untouched), and propagates
    /// session-construction errors.
    pub fn register(
        &mut self,
        id: TenantId,
        initial: &[PatternQuery],
        config: DiMatchingConfig,
    ) -> Result<()> {
        if self.tenants.contains_key(&id) {
            return Err(ProtocolError::DuplicateTenant { id: id.0 });
        }
        let session = StreamingSession::new(initial, config, self.options)?;
        self.insert_tenant(id, session);
        Ok(())
    }

    /// Removes a tenant, returning its session (checkpoint it, dissolve it
    /// into station memories, or drop it).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::UnknownTenant`] if `id` is not registered.
    pub fn deregister(&mut self, id: TenantId) -> Result<StreamingSession> {
        self.tenants
            .remove(&id)
            .map(|tenant| tenant.session)
            .ok_or(ProtocolError::UnknownTenant { id: id.0 })
    }

    /// Registers a new standing query for `id`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::UnknownTenant`] for an unregistered id and
    /// propagates session errors.
    pub fn insert_query(&mut self, id: TenantId, query: &PatternQuery) -> Result<StreamQueryId> {
        self.tenant_mut(id)?.session.insert_query(query)
    }

    /// Retires a standing query of `id`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::UnknownTenant`] for an unregistered id and
    /// propagates session errors.
    pub fn remove_query(&mut self, id: TenantId, query: StreamQueryId) -> Result<()> {
        self.tenant_mut(id)?.session.remove_query(query)
    }

    /// Read access to a tenant's session (epoch number, live queries,
    /// fill ratio, checkpointing).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::UnknownTenant`] if `id` is not registered.
    pub fn session(&self, id: TenantId) -> Result<&StreamingSession> {
        Ok(&self.tenant(id)?.session)
    }

    /// The tenant's lifetime cost ledger: every epoch it ran absorbed into
    /// one [`CostReport`] (makespans joined by maximum — tenants share one
    /// timeline), plus a [`deferred_epochs`] count of admission deferrals.
    ///
    /// [`deferred_epochs`]: CostReport::deferred_epochs
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::UnknownTenant`] if `id` is not registered.
    pub fn tenant_report(&self, id: TenantId) -> Result<CostReport> {
        Ok(self.tenant(id)?.ledger.report())
    }

    /// Runs one service epoch over `dataset`: admission first (center-side,
    /// before any frame flies), then every admitted tenant's epoch
    /// interleaved over the shared executor and station links.
    ///
    /// Admission considers tenants longest-deferred first (ties in id
    /// order). Deferred tenants' sessions are untouched — no drain, no
    /// routing mutation — and their ledgers record the deferral.
    ///
    /// # Errors
    ///
    /// Propagates any admitted tenant's epoch error; like a solo failed
    /// epoch, every admitted session then resyncs with a full broadcast on
    /// its next run.
    pub fn run_epoch(&mut self, dataset: &Dataset) -> Result<ServiceEpoch> {
        let station_count = dataset.stations().len();
        if self.links.len() < station_count {
            self.links.resize(station_count, 0);
        }

        // Admission: longest-deferred first so backpressure is
        // starvation-free, ids as the deterministic tie-break.
        let mut order: Vec<TenantId> = self.tenants.keys().copied().collect();
        order.sort_by_key(|id| (std::cmp::Reverse(self.tenants[id].deferred_streak), *id));
        let mut admitted: Vec<TenantId> = Vec::new();
        let mut deferred: Vec<TenantId> = Vec::new();
        let mut inflight = vec![0u64; station_count];
        for id in order {
            let budget = self.admission.per_station_budget_bytes;
            let tenant = self.tenants.get_mut(&id).expect("id from key iteration");
            let fits = match budget {
                None => true,
                Some(budget) => {
                    let planned = tenant.session.planned_station_bytes(station_count)?;
                    let fits = planned
                        .iter()
                        .zip(&inflight)
                        .all(|(&bytes, &used)| used == 0 || used.saturating_add(bytes) <= budget);
                    if fits {
                        for (used, &bytes) in inflight.iter_mut().zip(&planned) {
                            *used = used.saturating_add(bytes);
                        }
                    }
                    fits
                }
            };
            if fits {
                admitted.push(id);
            } else {
                tenant.deferred_streak += 1;
                tenant.ledger.record_deferred_epoch();
                deferred.push(id);
            }
        }

        // Run the admitted tenants in admission order — the order they
        // claim the shared downlinks.
        let rank: BTreeMap<TenantId, usize> = admitted
            .iter()
            .enumerate()
            .map(|(order, &id)| (id, order))
            .collect();
        let mut entries: Vec<(TenantId, &mut Tenant)> = self
            .tenants
            .iter_mut()
            .filter(|(id, _)| rank.contains_key(id))
            .map(|(&id, tenant)| (id, tenant))
            .collect();
        entries.sort_by_key(|(id, _)| rank[id]);
        let mut sessions: Vec<&mut StreamingSession> = entries
            .iter_mut()
            .map(|(_, tenant)| &mut tenant.session)
            .collect();
        let epoch_outcomes = run_interleaved_epochs(&mut sessions, dataset, &mut self.links)?;

        let mut outcomes = BTreeMap::new();
        for ((id, tenant), outcome) in entries.into_iter().zip(epoch_outcomes) {
            tenant.ledger.absorb(&outcome.outcome.cost);
            tenant.deferred_streak = 0;
            outcomes.insert(id, outcome);
        }
        Ok(ServiceEpoch { outcomes, deferred })
    }

    /// Serializes every tenant's session checkpoint into one versioned
    /// service frame (see [`wire::encode_service_checkpoint`]).
    ///
    /// # Errors
    ///
    /// Propagates wire-encoding errors.
    pub fn checkpoint(&self) -> Result<Bytes> {
        let frames: Vec<(u64, Bytes)> = self
            .tenants
            .iter()
            .map(|(id, tenant)| Ok((id.0, tenant.session.checkpoint()?)))
            .collect::<Result<_>>()?;
        wire::encode_service_checkpoint(&frames)
    }

    /// Serializes one tenant's session checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::UnknownTenant`] for an unregistered id and
    /// propagates wire-encoding errors.
    pub fn checkpoint_tenant(&self, id: TenantId) -> Result<Bytes> {
        self.tenant(id)?.session.checkpoint()
    }

    /// Registers a tenant recovered from a checkpoint frame plus the
    /// station memories that survived the crash — the restarted-center
    /// path: the recovered session resyncs stations via its next delta
    /// instead of a full re-broadcast. The recovered tenant's ledger
    /// starts fresh (the crashed center's meters died with it).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::DuplicateTenant`] if `id` is already
    /// registered (untouched on rejection) and propagates
    /// [`StreamingSession::recover`] errors.
    pub fn recover_tenant(
        &mut self,
        id: TenantId,
        frame: Bytes,
        stations: Vec<StationMemory>,
        config: DiMatchingConfig,
    ) -> Result<()> {
        if self.tenants.contains_key(&id) {
            return Err(ProtocolError::DuplicateTenant { id: id.0 });
        }
        let session = StreamingSession::recover(frame, stations, config, self.options)?;
        self.insert_tenant(id, session);
        Ok(())
    }

    fn insert_tenant(&mut self, id: TenantId, session: StreamingSession) {
        self.tenants.insert(
            id,
            Tenant {
                session,
                ledger: CostMeter::new(),
                deferred_streak: 0,
            },
        );
    }

    fn tenant(&self, id: TenantId) -> Result<&Tenant> {
        self.tenants
            .get(&id)
            .ok_or(ProtocolError::UnknownTenant { id: id.0 })
    }

    fn tenant_mut(&mut self, id: TenantId) -> Result<&mut Tenant> {
        self.tenants
            .get_mut(&id)
            .ok_or(ProtocolError::UnknownTenant { id: id.0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query(dataset: &Dataset, index: usize) -> PatternQuery {
        let user = dataset.users()[index];
        PatternQuery::from_fragments(dataset.fragments(user.id).unwrap()).unwrap()
    }

    #[test]
    fn duplicate_registration_is_rejected_and_state_untouched() {
        let day = Dataset::small(11);
        let mut service = Service::new(PipelineOptions::default());
        service
            .register(TenantId(7), &[query(&day, 0)], DiMatchingConfig::default())
            .unwrap();
        let before = service.session(TenantId(7)).unwrap().live_queries();
        let err = service
            .register(TenantId(7), &[query(&day, 1)], DiMatchingConfig::default())
            .unwrap_err();
        assert!(matches!(err, ProtocolError::DuplicateTenant { id: 7 }));
        assert_eq!(service.session(TenantId(7)).unwrap().live_queries(), before);
        assert_eq!(service.tenants(), vec![TenantId(7)]);
    }

    #[test]
    fn unknown_tenant_operations_are_rejected() {
        let day = Dataset::small(12);
        let mut service = Service::new(PipelineOptions::default());
        let missing = TenantId(3);
        assert!(matches!(
            service.deregister(missing).unwrap_err(),
            ProtocolError::UnknownTenant { id: 3 }
        ));
        assert!(matches!(
            service.insert_query(missing, &query(&day, 0)).unwrap_err(),
            ProtocolError::UnknownTenant { id: 3 }
        ));
        assert!(matches!(
            service.remove_query(missing, StreamQueryId(0)).unwrap_err(),
            ProtocolError::UnknownTenant { id: 3 }
        ));
        assert!(matches!(
            service.tenant_report(missing).unwrap_err(),
            ProtocolError::UnknownTenant { id: 3 }
        ));
        assert!(matches!(
            service.checkpoint_tenant(missing).unwrap_err(),
            ProtocolError::UnknownTenant { id: 3 }
        ));
    }

    #[test]
    fn deregister_returns_the_live_session() {
        let day = Dataset::small(13);
        let mut service = Service::new(PipelineOptions::default());
        service
            .register(TenantId(0), &[query(&day, 0)], DiMatchingConfig::default())
            .unwrap();
        service.run_epoch(&day).unwrap();
        let session = service.deregister(TenantId(0)).unwrap();
        assert_eq!(session.epoch(), 1);
        assert!(service.tenants().is_empty());
    }

    #[test]
    fn ledger_accumulates_across_epochs() {
        let day = Dataset::small(14);
        let mut service = Service::new(PipelineOptions::default());
        service
            .register(TenantId(0), &[query(&day, 0)], DiMatchingConfig::default())
            .unwrap();
        let first = service.run_epoch(&day).unwrap();
        let after_one = service.tenant_report(TenantId(0)).unwrap();
        assert_eq!(
            after_one.query_bytes,
            first.outcomes[&TenantId(0)].outcome.cost.query_bytes
        );
        service.run_epoch(&day).unwrap();
        let after_two = service.tenant_report(TenantId(0)).unwrap();
        assert!(after_two.query_bytes > after_one.query_bytes);
        assert_eq!(after_two.deferred_epochs, 0);
    }

    #[test]
    fn recover_tenant_rejects_a_live_id() {
        let day = Dataset::small(15);
        let mut service = Service::new(PipelineOptions::default());
        let config = DiMatchingConfig::default();
        service
            .register(TenantId(0), &[query(&day, 0)], config.clone())
            .unwrap();
        let frame = service.checkpoint_tenant(TenantId(0)).unwrap();
        let err = service
            .recover_tenant(TenantId(0), frame, Vec::new(), config)
            .unwrap_err();
        assert!(matches!(err, ProtocolError::DuplicateTenant { id: 0 }));
        assert_eq!(service.tenants(), vec![TenantId(0)]);
    }
}
