//! The pluggable filter layer of the DI-matching protocol.
//!
//! The paper's protocol is *one* pipeline — the data center builds a filter
//! from the query batch, broadcasts it, every station scans its local store
//! once, and the center aggregates and ranks the reports. What varies
//! between the paper's three methods is only the filter family and its
//! report/ranking semantics. [`FilterStrategy`] captures exactly that
//! variation: the weighted Bloom filter ([`Wbf`]), the plain Bloom baseline
//! ([`Bloom`]) and the ship-everything oracle ([`Naive`]) are three
//! implementations of one trait, and
//! [`run_pipeline`](crate::run_pipeline) is the single generic
//! pipeline they all run through. Adding a fourth method (a counting
//! filter, a compressed filter, an async deployment of any of them) is one
//! `impl`, not another fork of the pipeline.

use bytes::Bytes;
use dipm_core::{encode, BloomFilter, Weight, WeightedBloomFilter};
use dipm_distsim::{CostMeter, TrafficClass};
use dipm_mobilenet::UserId;
use dipm_timeseries::Pattern;

use crate::basestation::{scan_shard_bloom, scan_shard_wbf, WbfScanSection};
use crate::config::DiMatchingConfig;
use crate::datacenter::{aggregate_and_rank, build_bloom, build_wbf, BuiltBloom, BuiltFilter};
use crate::error::{ProtocolError, Result};
use crate::query::PatternQuery;
use crate::result::{Method, MethodDetails, QueryVerdict};
use crate::wire;

/// Bytes of aggregation state the center keeps per surviving candidate.
pub(crate) const CENTER_ENTRY_BYTES: u64 = 24;

/// One filter family plugged into the generic DI-matching pipeline.
///
/// A strategy owns four protocol moments, each mirroring one algorithm of
/// the paper:
///
/// 1. **[`build`](FilterStrategy::build)** (Algorithm 1) — turn a query
///    group into one broadcastable filter section, with
///    [`encode_filter`](FilterStrategy::encode_filter) /
///    [`decode_filter`](FilterStrategy::decode_filter) defining its wire
///    form inside the batch frame.
/// 2. **[`scan_shard`](FilterStrategy::scan_shard)** (Algorithm 2) — probe
///    one shard of a station's store against *every* query section in a
///    single pass, emitting query-tagged station reports.
/// 3. **[`encode_reports`](FilterStrategy::encode_reports)** /
///    [`decode_reports`](FilterStrategy::decode_reports) — the report wire
///    form (byte-metered by the simulated network).
/// 4. **[`aggregate`](FilterStrategy::aggregate)** (Algorithm 3) — fold the
///    collected reports into one ranking per query.
pub trait FilterStrategy {
    /// The method label attached to outcomes.
    const METHOD: Method;

    /// Whether the strategy broadcasts filter sections at all. The naive
    /// oracle ships raw data instead, so its pipeline run skips the
    /// query-dissemination leg entirely (and meters zero query bytes).
    const BROADCASTS: bool;

    /// The traffic class of station→center report messages.
    const REPORT_CLASS: TrafficClass;

    /// One query group's built filter section, as the data center holds it.
    type BuiltFilter: Send + Sync;

    /// A station's decoded view of one broadcast section.
    type Decoded: Send + Sync;

    /// One station report row (query-tagged where the method is
    /// query-aware).
    type StationReport: Send + Clone;

    /// Algorithm 1: builds one filter section over a query group.
    ///
    /// The batch pipeline calls this once per query (singleton groups — the
    /// batch frame carries per-query sections); the legacy merged builders
    /// call it once with the whole batch.
    ///
    /// # Errors
    ///
    /// Propagates configuration, pattern and filter errors.
    fn build(queries: &[PatternQuery], config: &DiMatchingConfig) -> Result<Self::BuiltFilter>;

    /// The section's distinct probe keys — what a routing tree tests
    /// station summaries against to decide which stations can possibly
    /// report. An empty slice disables routing for the section (the naive
    /// oracle ships raw data regardless of the query set).
    fn routing_keys(built: &Self::BuiltFilter) -> &[u64];

    /// Serializes a built section for the batch broadcast frame.
    ///
    /// # Errors
    ///
    /// Propagates encoding errors.
    fn encode_filter(built: &Self::BuiltFilter) -> Result<Bytes>;

    /// Deserializes a broadcast section at a station.
    ///
    /// # Errors
    ///
    /// Returns a decode error on malformed section bytes.
    fn decode_filter(bytes: Bytes) -> Result<Self::Decoded>;

    /// Algorithm 2 over one shard, batch-first: one pass over the rows,
    /// probing every section.
    ///
    /// # Errors
    ///
    /// Propagates pattern-transformation errors.
    fn scan_shard(
        sections: &[(u32, Self::Decoded)],
        shard: &[(UserId, &Pattern)],
        config: &DiMatchingConfig,
        meter: Option<&CostMeter>,
    ) -> Result<Vec<Self::StationReport>>;

    /// The canonical sort key of a report row — `(query, user)`. Stations
    /// sort merged shard output by this key before encoding, so the report
    /// payload is byte-identical whatever the shard layout or execution
    /// mode.
    fn report_key(report: &Self::StationReport) -> (u32, UserId);

    /// Serializes one station's merged report rows.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::FrameTooLarge`] if the rows exceed the wire
    /// format's length prefixes.
    fn encode_reports(reports: &[Self::StationReport]) -> Result<Bytes>;

    /// Deserializes one station's report payload at the center.
    ///
    /// # Errors
    ///
    /// Returns a decode error on malformed payloads.
    fn decode_reports(payload: Bytes) -> Result<Vec<Self::StationReport>>;

    /// Meters the aggregation state the center retains for this method.
    fn record_center_storage(
        meter: &CostMeter,
        received_bytes: u64,
        reports: &[Self::StationReport],
    );

    /// Algorithm 3: folds every station's reports into one ranking per
    /// query section, in section order.
    ///
    /// # Errors
    ///
    /// Returns an error on reports referencing unknown query ids or on
    /// arithmetic failures while reconstructing candidates.
    fn aggregate(
        sections: &[Self::BuiltFilter],
        reports: Vec<Self::StationReport>,
        config: &DiMatchingConfig,
        meter: &CostMeter,
        top_k: Option<usize>,
    ) -> Result<Vec<QueryVerdict>>;
}

/// Splits query-tagged reports into one bucket per section, rejecting tags
/// no section owns (a malformed or malicious station report).
pub(crate) fn bucket_by_query<R>(
    section_count: usize,
    reports: Vec<R>,
    tag: impl Fn(&R) -> u32,
) -> Result<Vec<Vec<R>>> {
    let mut buckets: Vec<Vec<R>> = std::iter::repeat_with(Vec::new)
        .take(section_count)
        .collect();
    for report in reports {
        let query = tag(&report) as usize;
        match buckets.get_mut(query) {
            Some(bucket) => bucket.push(report),
            None => {
                return Err(ProtocolError::malformed_report(format!(
                    "report references unknown query {query}"
                )))
            }
        }
    }
    Ok(buckets)
}

/// The paper's weighted Bloom filter method (DI-matching proper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Wbf;

/// A station's **owned** decode of one WBF broadcast section: the filter
/// plus the query volumes it shipped with.
///
/// The batch scan path no longer uses this — stations scan straight out of
/// the received bytes via the zero-copy [`wire::WbfSectionView`]. The owned
/// form remains for paths that must mutate filter state after decode:
/// streaming delta application and checkpoint recovery.
#[derive(Debug, Clone)]
pub struct WbfStationView {
    /// The weighted filter to probe.
    pub filter: WeightedBloomFilter,
    /// The query group's global volumes (the weight-plausibility anchors).
    pub query_totals: Vec<u64>,
}

impl FilterStrategy for Wbf {
    const METHOD: Method = Method::Wbf;
    const BROADCASTS: bool = true;
    const REPORT_CLASS: TrafficClass = TrafficClass::Report;

    type BuiltFilter = BuiltFilter;
    type Decoded = wire::WbfSectionView;
    type StationReport = (u32, UserId, Weight);

    fn build(queries: &[PatternQuery], config: &DiMatchingConfig) -> Result<Self::BuiltFilter> {
        build_wbf(queries, config)
    }

    fn routing_keys(built: &Self::BuiltFilter) -> &[u64] {
        &built.probe_keys
    }

    fn encode_filter(built: &Self::BuiltFilter) -> Result<Bytes> {
        let filter_bytes = encode::encode_wbf(&built.filter).map_err(ProtocolError::Core)?;
        wire::encode_filter_broadcast(&built.query_totals, filter_bytes)
    }

    fn decode_filter(bytes: Bytes) -> Result<Self::Decoded> {
        // Zero-copy: validate the frame once, then probe in place. The
        // view borrows the broadcast bytes instead of rebuilding an owned
        // filter structure per station.
        wire::view_filter_broadcast(bytes)
    }

    fn scan_shard(
        sections: &[(u32, Self::Decoded)],
        shard: &[(UserId, &Pattern)],
        config: &DiMatchingConfig,
        meter: Option<&CostMeter>,
    ) -> Result<Vec<Self::StationReport>> {
        let views: Vec<WbfScanSection<'_, dipm_core::WbfFrameView>> = sections
            .iter()
            .map(|(query, view)| (*query, &view.filter, view.query_totals.as_slice()))
            .collect();
        scan_shard_wbf(&views, shard, config, meter)
    }

    fn report_key(report: &Self::StationReport) -> (u32, UserId) {
        (report.0, report.1)
    }

    fn encode_reports(reports: &[Self::StationReport]) -> Result<Bytes> {
        wire::encode_tagged_weight_reports(reports)
    }

    fn decode_reports(payload: Bytes) -> Result<Vec<Self::StationReport>> {
        wire::decode_tagged_weight_reports(payload)
    }

    fn record_center_storage(
        meter: &CostMeter,
        _received_bytes: u64,
        reports: &[Self::StationReport],
    ) {
        meter.record_storage(reports.len() as u64 * CENTER_ENTRY_BYTES);
    }

    fn aggregate(
        sections: &[Self::BuiltFilter],
        reports: Vec<Self::StationReport>,
        _config: &DiMatchingConfig,
        _meter: &CostMeter,
        top_k: Option<usize>,
    ) -> Result<Vec<QueryVerdict>> {
        let buckets = bucket_by_query(sections.len(), reports, |&(q, _, _)| q)?;
        Ok(sections
            .iter()
            .zip(buckets)
            .map(|(built, bucket)| {
                let weights = aggregate_and_rank(
                    bucket.into_iter().map(|(_, user, w)| (user, w)).collect(),
                    top_k,
                );
                QueryVerdict {
                    ranked: weights.iter().map(|r| r.user).collect(),
                    details: MethodDetails::Wbf {
                        weights,
                        build: built.stats,
                    },
                }
            })
            .collect())
    }
}

/// The paper's plain Bloom-filter baseline (`BF`): identical representation
/// and sampling, membership-only matching, bare-ID reports, ranking by the
/// number of reporting stations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bloom;

impl FilterStrategy for Bloom {
    const METHOD: Method = Method::Bloom;
    const BROADCASTS: bool = true;
    const REPORT_CLASS: TrafficClass = TrafficClass::Report;

    type BuiltFilter = BuiltBloom;
    type Decoded = wire::BloomSectionView;
    type StationReport = (u32, UserId);

    fn build(queries: &[PatternQuery], config: &DiMatchingConfig) -> Result<Self::BuiltFilter> {
        build_bloom(queries, config)
    }

    fn routing_keys(built: &Self::BuiltFilter) -> &[u64] {
        &built.probe_keys
    }

    fn encode_filter(built: &Self::BuiltFilter) -> Result<Bytes> {
        Ok(encode::encode_bloom(&built.filter))
    }

    fn decode_filter(bytes: Bytes) -> Result<Self::Decoded> {
        wire::view_bloom_section(bytes)
    }

    fn scan_shard(
        sections: &[(u32, Self::Decoded)],
        shard: &[(UserId, &Pattern)],
        config: &DiMatchingConfig,
        meter: Option<&CostMeter>,
    ) -> Result<Vec<Self::StationReport>> {
        let views: Vec<(u32, &BloomFilter)> = sections
            .iter()
            .map(|(query, v)| (*query, &v.filter))
            .collect();
        scan_shard_bloom(&views, shard, config, meter)
    }

    fn report_key(report: &Self::StationReport) -> (u32, UserId) {
        *report
    }

    fn encode_reports(reports: &[Self::StationReport]) -> Result<Bytes> {
        wire::encode_tagged_id_reports(reports)
    }

    fn decode_reports(payload: Bytes) -> Result<Vec<Self::StationReport>> {
        wire::decode_tagged_id_reports(payload)
    }

    fn record_center_storage(
        meter: &CostMeter,
        _received_bytes: u64,
        reports: &[Self::StationReport],
    ) {
        // Without weights the center only keeps one counter per distinct
        // (query, candidate) pair.
        let mut distinct: Vec<(u32, UserId)> = reports.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        meter.record_storage(distinct.len() as u64 * CENTER_ENTRY_BYTES);
    }

    fn aggregate(
        sections: &[Self::BuiltFilter],
        reports: Vec<Self::StationReport>,
        _config: &DiMatchingConfig,
        _meter: &CostMeter,
        top_k: Option<usize>,
    ) -> Result<Vec<QueryVerdict>> {
        let buckets = bucket_by_query(sections.len(), reports, |&(q, _)| q)?;
        Ok(sections
            .iter()
            .zip(buckets)
            .map(|(built, bucket)| {
                // Without weights the center can only count reporting
                // stations per candidate.
                let mut counts: std::collections::BTreeMap<UserId, u32> =
                    std::collections::BTreeMap::new();
                for (_, user) in bucket {
                    *counts.entry(user).or_insert(0) += 1;
                }
                let mut station_counts: Vec<(UserId, u32)> = counts.into_iter().collect();
                station_counts.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
                if let Some(k) = top_k {
                    station_counts.truncate(k);
                }
                QueryVerdict {
                    ranked: station_counts.iter().map(|&(u, _)| u).collect(),
                    details: MethodDetails::Bloom {
                        station_counts,
                        build: built.stats,
                    },
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_rejects_unknown_query_tags() {
        let reports = vec![(0u32, UserId(1)), (2u32, UserId(2))];
        assert!(bucket_by_query(2, reports.clone(), |&(q, _)| q).is_err());
        let ok = bucket_by_query(3, reports, |&(q, _)| q).unwrap();
        assert_eq!(ok[0], vec![(0, UserId(1))]);
        assert!(ok[1].is_empty());
        assert_eq!(ok[2], vec![(2, UserId(2))]);
    }

    #[test]
    fn wbf_sections_roundtrip_through_the_wire() {
        let query = PatternQuery::from_locals(vec![
            Pattern::from([1u64, 2, 3, 1, 0, 2, 4, 1]),
            Pattern::from([2u64, 2, 2, 0, 1, 3, 0, 2]),
        ])
        .unwrap();
        let config = DiMatchingConfig::default();
        let built = Wbf::build(std::slice::from_ref(&query), &config).unwrap();
        let view = Wbf::decode_filter(Wbf::encode_filter(&built).unwrap()).unwrap();
        // The station-side decode is a zero-copy frame view; semantic
        // equality against the built owned filter is the roundtrip check.
        assert_eq!(view.filter, built.filter);
        assert_eq!(view.query_totals, built.query_totals);

        let bloom = Bloom::build(&[query], &config).unwrap();
        let section = Bloom::decode_filter(Bloom::encode_filter(&bloom).unwrap()).unwrap();
        assert_eq!(section.filter, bloom.filter);
    }

    #[test]
    fn strategy_constants_match_the_paper_roles() {
        fn role<S: FilterStrategy>() -> (Method, bool, TrafficClass) {
            (S::METHOD, S::BROADCASTS, S::REPORT_CLASS)
        }
        assert_eq!(role::<Wbf>(), (Method::Wbf, true, TrafficClass::Report));
        assert_eq!(role::<Bloom>(), (Method::Bloom, true, TrafficClass::Report));
    }
}
