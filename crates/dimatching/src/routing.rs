//! Bloofi-style query routing: a tree of OR-merged station summary filters.
//!
//! Broadcasting every query to every station is the paper's cost model and
//! a hard cap on station count. Bloofi (Crainiceanu & Lemire) shows the way
//! out: each station summarizes its local key population in a plain Bloom
//! filter, and the data center arranges those summaries as the leaves of a
//! configurable-fanout tree whose interior nodes are the **unions** of
//! their children. A query's probe set then descends only into subtrees
//! whose union summary can match ([`BloomFilter::may_contain_any`]), and
//! only the surviving leaf stations receive the broadcast.
//!
//! Routing is **sound** for the DI-matching scan: a station row survives
//! Algorithm 2 only if *every* sampled key of the row is set in the query
//! filter, so a station holding a matching row shares a key with the
//! query's probe set and is never pruned. Summary false positives only ever
//! *add* stations (wasted broadcasts, never wrong answers), which is why
//! the routed pipeline is conformance-pinned bit-identical to
//! [`RoutingPolicy::BroadcastAll`](crate::config::RoutingPolicy).
//!
//! Summaries hold each row's **informative** keys: accumulated patterns
//! start at zero, so the zero-value keys of a row's idle prefix appear in
//! every population and every tolerance band that brushes zero — probing on
//! them keeps every station alive and the tree never prunes. A row
//! therefore contributes only its nonzero-value keys, *unless the row is
//! entirely idle*, in which case its zero keys are kept so a query that
//! genuinely admits idle rows still reaches the stations holding them.
//! Soundness is preserved: a reporting row with any nonzero sample matched
//! the query filter at that sample, so its station's summary intersects the
//! probe set. (The residual exception — a row whose every nonzero sample
//! hits the query filter only through a filter false positive — needs one
//! independent bit-collision per distinct nonzero value and is the same
//! probability class as the WBF's own false reports.)
//!
//! Leaves are [`CountingWbf`]s holding each row's keys at [`Weight::ONE`]:
//! the reference counts make row insertion and removal exact inverses, so a
//! streaming session keeps the tree hot under CDR churn — per-station row
//! diffs update the touched leaf and recompute only its root path — and
//! after any interleaving the tree equals a from-scratch build (the
//! counting filter's rebuild-equivalence guarantee, lifted to the tree).

use std::collections::{BTreeMap, BTreeSet};

use dipm_core::{BloomFilter, CountingWbf, FilterParams, Weight};
use dipm_distsim::CostMeter;
use dipm_mobilenet::{Dataset, UserId};

use crate::basestation::sample_keys_into;
use crate::config::DiMatchingConfig;
use crate::error::{ProtocolError, Result};
use crate::wire;

/// Decorrelates the summary filters' hash family from the query filter's:
/// the two are probed with the same keys, and independent families keep a
/// query-filter false positive from implying a summary false positive.
const SUMMARY_SEED_TWEAK: u64 = 0x00B1_00F1;

/// Per-key false-positive rate the summary filters are sized for. Routing
/// probes a summary with the query's *whole* banded key set (any-match), so
/// the per-key rate must be far below `1 / probe_count` for the any-test to
/// discriminate at all; the query filter's own `target_fpp` (per-key, tested
/// twelve times per row, ~1%) would saturate every summary. ~29 bits per
/// key buys six nines, and summaries ship once per tree build, not per
/// query.
const SUMMARY_FPP: f64 = 1e-6;

/// The data center's routing state: per-station summary leaves and the
/// union tree above them.
///
/// Station identity is positional (leaf `i` is station index `i`), matching
/// the pipeline's station numbering. A tree over fewer than two stations is
/// *degenerate*: there is nothing to prune, and [`RoutingTree::route`]
/// falls back to broadcasting to every station.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingTree {
    fanout: usize,
    params: FilterParams,
    seed: u64,
    /// Reference-counted per-station key populations (all at
    /// [`Weight::ONE`]); the incremental source of truth.
    leaves: Vec<CountingWbf>,
    /// Each leaf's occupancy projected to a plain Bloom filter — the form
    /// that unions, ships and probes.
    blooms: Vec<BloomFilter>,
    /// Interior levels bottom-up: `levels[0]` unions chunks of `blooms`,
    /// each next level unions chunks of the previous, the last level is the
    /// single root. Empty when degenerate.
    levels: Vec<Vec<BloomFilter>>,
}

impl RoutingTree {
    /// An empty tree over `station_count` stations with uniform summary
    /// geometry `params` and hash seed derived from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::InvalidConfig`] if `fanout < 2`.
    pub fn new(
        station_count: usize,
        fanout: usize,
        params: FilterParams,
        seed: u64,
    ) -> Result<RoutingTree> {
        if fanout < 2 {
            return Err(ProtocolError::invalid_config(
                "routing tree fanout must be at least 2",
            ));
        }
        let seed = seed ^ SUMMARY_SEED_TWEAK;
        let leaves: Vec<CountingWbf> = (0..station_count)
            .map(|_| CountingWbf::new(params, seed))
            .collect();
        let blooms: Vec<BloomFilter> = (0..station_count)
            .map(|_| BloomFilter::new(params, seed))
            .collect();
        let mut tree = RoutingTree {
            fanout,
            params,
            seed,
            leaves,
            blooms,
            levels: Vec::new(),
        };
        tree.rebuild_levels()?;
        Ok(tree)
    }

    /// Builds the tree over a dataset's current station populations: one
    /// leaf per station holding every local row's routing signature,
    /// geometry sized for the most populous station at the summary
    /// false-positive rate.
    ///
    /// # Errors
    ///
    /// Propagates configuration, pattern and filter errors.
    pub fn from_dataset(
        dataset: &Dataset,
        fanout: usize,
        config: &DiMatchingConfig,
    ) -> Result<RoutingTree> {
        let rows = station_row_keys(dataset, config)?;
        let params = summary_params(&rows)?;
        let mut tree = RoutingTree::new(rows.len(), fanout, params, config.seed)?;
        for (station, station_rows) in rows.iter().enumerate() {
            for keys in station_rows.values() {
                tree.insert_row(station, keys)?;
            }
        }
        Ok(tree)
    }

    /// The number of leaf stations.
    pub fn station_count(&self) -> usize {
        self.blooms.len()
    }

    /// Children per interior node.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// The uniform summary-filter geometry.
    pub fn params(&self) -> FilterParams {
        self.params
    }

    /// Whether the tree cannot prune anything (fewer than two stations) and
    /// [`RoutingTree::route`] falls back to broadcast.
    pub fn is_degenerate(&self) -> bool {
        self.station_count() < 2
    }

    /// One station's current summary filter (what it would upload).
    pub fn summary(&self, station: usize) -> &BloomFilter {
        &self.blooms[station]
    }

    /// Registers one row's sampled keys at `station`, refreshing the leaf
    /// summary and its root path.
    ///
    /// # Errors
    ///
    /// Propagates filter errors (counter overflow) and rejects an
    /// out-of-range station.
    pub fn insert_row(&mut self, station: usize, keys: &[u64]) -> Result<()> {
        self.check_station(station)?;
        for &key in keys {
            self.leaves[station]
                .insert(key, Weight::ONE)
                .map_err(ProtocolError::Core)?;
        }
        self.refresh_path(station)
    }

    /// Removes one previously inserted row's keys from `station` —
    /// the exact inverse of [`RoutingTree::insert_row`], reference-counted
    /// so rows sharing keys survive each other's removal.
    ///
    /// # Errors
    ///
    /// Propagates filter errors (removing keys never inserted) and rejects
    /// an out-of-range station.
    pub fn remove_row(&mut self, station: usize, keys: &[u64]) -> Result<()> {
        self.check_station(station)?;
        for &key in keys {
            self.leaves[station]
                .remove(key, Weight::ONE)
                .map_err(ProtocolError::Core)?;
        }
        self.refresh_path(station)
    }

    fn check_station(&self, station: usize) -> Result<()> {
        if station >= self.station_count() {
            return Err(ProtocolError::invalid_config(format!(
                "routing tree has {} stations, no station {station}",
                self.station_count()
            )));
        }
        Ok(())
    }

    /// Re-projects one leaf's summary and recomputes the union nodes on its
    /// path to the root — the only nodes an update can change.
    fn refresh_path(&mut self, station: usize) -> Result<()> {
        self.blooms[station] = self.leaves[station].bloom_snapshot();
        let mut child = station;
        for level in 0..self.levels.len() {
            let parent = child / self.fanout;
            let node = self.union_of_children(level, parent)?;
            self.levels[level][parent] = node;
            child = parent;
        }
        Ok(())
    }

    /// The union of node `parent`'s children at `level` (children live in
    /// `blooms` for level 0, in `levels[level - 1]` above).
    fn union_of_children(&self, level: usize, parent: usize) -> Result<BloomFilter> {
        let children = if level == 0 {
            &self.blooms
        } else {
            &self.levels[level - 1]
        };
        let lo = parent * self.fanout;
        let hi = ((parent + 1) * self.fanout).min(children.len());
        let mut node = BloomFilter::new(self.params, self.seed);
        for child in &children[lo..hi] {
            child.union_into(&mut node).map_err(ProtocolError::Core)?;
        }
        Ok(node)
    }

    /// Rebuilds every interior level bottom-up from the current summaries.
    fn rebuild_levels(&mut self) -> Result<()> {
        self.levels.clear();
        let mut width = self.blooms.len();
        while width > 1 {
            let level = self.levels.len();
            let parents = width.div_ceil(self.fanout);
            let nodes = (0..parents)
                .map(|parent| self.union_of_children(level, parent))
                .collect::<Result<Vec<_>>>()?;
            self.levels.push(nodes);
            width = parents;
        }
        Ok(())
    }

    /// The station indices whose subtree summaries can match any of `keys`,
    /// ascending — the broadcast's recipient set. A degenerate tree falls
    /// back to every station; otherwise the probe descends from the root
    /// and an empty or unmatched key set prunes everything (an empty query
    /// filter reports nothing anyway).
    pub fn route(&self, keys: &[u64]) -> Vec<u32> {
        let n = self.station_count();
        if self.is_degenerate() {
            return (0..n as u32).collect();
        }
        let top = self.levels.len() - 1;
        let mut survivors: Vec<usize> = (0..self.levels[top].len())
            .filter(|&i| self.levels[top][i].may_contain_any(keys.iter().copied()))
            .collect();
        for level in (0..top).rev() {
            let mut next = Vec::new();
            for &parent in &survivors {
                let lo = parent * self.fanout;
                let hi = ((parent + 1) * self.fanout).min(self.levels[level].len());
                for child in lo..hi {
                    if self.levels[level][child].may_contain_any(keys.iter().copied()) {
                        next.push(child);
                    }
                }
            }
            survivors = next;
        }
        let mut targets = Vec::new();
        for &parent in &survivors {
            let lo = parent * self.fanout;
            let hi = ((parent + 1) * self.fanout).min(n);
            for station in lo..hi {
                if self.blooms[station].may_contain_any(keys.iter().copied()) {
                    targets.push(station as u32);
                }
            }
        }
        targets
    }

    /// [`RoutingTree::route`], grouped into per-subtree claim frames: one
    /// `(lo, hi, targets)` triple per surviving bottom-level node, covering
    /// the leaf range `[lo, hi)`. Disjoint by construction — the wire
    /// plan's overlap rejection guards against a *corrupted* plan, and a
    /// degenerate tree emits one whole-range claim.
    pub fn route_frames(&self, keys: &[u64]) -> Vec<(u32, u32, Vec<u32>)> {
        let n = self.station_count() as u32;
        let targets = self.route(keys);
        if self.is_degenerate() {
            return vec![(0, n, targets)];
        }
        let mut frames: Vec<(u32, u32, Vec<u32>)> = Vec::new();
        for target in targets {
            let group = target / self.fanout as u32;
            let lo = group * self.fanout as u32;
            let hi = (lo + self.fanout as u32).min(n);
            match frames.last_mut() {
                Some((last_lo, _, list)) if *last_lo == lo => list.push(target),
                _ => frames.push((lo, hi, vec![target])),
            }
        }
        frames
    }
}

/// The sampled-zero keys under `config`'s hash scheme — the keys an idle
/// sample produces ([`HashScheme::ValueOnly`](crate::config::HashScheme)
/// collapses them all to the single key `0`).
fn zero_value_keys(config: &DiMatchingConfig) -> BTreeSet<u64> {
    (0..config.samples)
        .map(|i| config.hash_scheme.key(i, 0))
        .collect()
}

/// One row's routing signature: its nonzero-value keys, or — for a row with
/// no traffic at any sample — its zero keys, kept so idle rows stay visible
/// to queries that genuinely admit them (see the module docs).
fn routing_signature(keys: &[u64], zero_keys: &BTreeSet<u64>) -> Vec<u64> {
    let nonzero: Vec<u64> = keys
        .iter()
        .copied()
        .filter(|k| !zero_keys.contains(k))
        .collect();
    if nonzero.is_empty() {
        keys.to_vec()
    } else {
        nonzero
    }
}

/// Every station's current routing signatures, positionally indexed:
/// `rows[station][user]` is the user's [`routing_signature`] — derived from
/// exactly the keys Algorithm 2 would probe for that row. Streaming
/// sessions diff successive epochs' maps to keep the tree hot.
pub(crate) fn station_row_keys(
    dataset: &Dataset,
    config: &DiMatchingConfig,
) -> Result<Vec<BTreeMap<UserId, Vec<u64>>>> {
    let zero_keys = zero_value_keys(config);
    let empty = BTreeMap::new();
    let mut keys = Vec::new();
    dataset
        .stations()
        .iter()
        .map(|&station| {
            let locals = dataset.station_locals(station).unwrap_or(&empty);
            locals
                .iter()
                .map(|(&user, pattern)| {
                    sample_keys_into(pattern, config, &mut keys)?;
                    Ok((user, routing_signature(&keys, &zero_keys)))
                })
                .collect::<Result<BTreeMap<UserId, Vec<u64>>>>()
        })
        .collect()
}

/// Uniform summary geometry: sized for the most populous station's distinct
/// keys at [`SUMMARY_FPP`]. Uniformity is what makes the leaves unionable
/// all the way to the root.
pub(crate) fn summary_params(rows: &[BTreeMap<UserId, Vec<u64>>]) -> Result<FilterParams> {
    let max_distinct = rows
        .iter()
        .map(|station| {
            station
                .values()
                .flat_map(|keys| keys.iter().copied())
                .collect::<BTreeSet<u64>>()
                .len()
        })
        .max()
        .unwrap_or(0);
    FilterParams::optimal(max_distinct.max(1), SUMMARY_FPP).map_err(ProtocolError::Core)
}

/// One station's summary-upload cost in wire bytes, pushed through the
/// encoder *and* decoder so the metered bytes are exactly what a validated
/// frame weighs.
pub(crate) fn summary_upload_bytes(tree: &RoutingTree, station: usize) -> Result<u64> {
    let frame = wire::encode_routing_summary(station as u32, tree.summary(station));
    let len = frame.len() as u64;
    let (decoded_station, _) = wire::decode_routing_summary(frame)?;
    debug_assert_eq!(decoded_station as usize, station);
    Ok(len)
}

/// Routes `keys` through `tree` via the wire plan — every routed-probe
/// frame is encoded, decoded and admitted into a [`wire::RoutingPlan`] (so
/// overlap and range validation run on the real frames) — returning the
/// per-station active mask and the plan's total wire bytes.
pub(crate) fn metered_route(tree: &RoutingTree, keys: &[u64]) -> Result<(Vec<bool>, u64)> {
    let station_count = tree.station_count();
    let mut bytes = 0u64;
    let mut plan = wire::RoutingPlan::new(station_count as u32);
    for (lo, hi, targets) in tree.route_frames(keys) {
        let frame = wire::encode_routed_probes(lo, hi, &targets)?;
        bytes += frame.len() as u64;
        plan.claim(&wire::decode_routed_probes(frame)?)?;
    }
    let mut active = vec![false; station_count];
    for station in plan.into_targets() {
        active[station as usize] = true;
    }
    Ok((active, bytes))
}

/// The center's routing decision for one batch: builds the tree over the
/// dataset, moves the summary-upload and routed-plan frames across the
/// meter's routing ledger, and returns the per-station active mask.
pub(crate) fn route_batch(
    dataset: &Dataset,
    keys: &[u64],
    fanout: usize,
    config: &DiMatchingConfig,
    meter: &CostMeter,
) -> Result<Vec<bool>> {
    let tree = RoutingTree::from_dataset(dataset, fanout, config)?;
    let mut routing_bytes = 0u64;
    // Each station uploads its summary once per tree (re)build.
    for station in 0..tree.station_count() {
        routing_bytes += summary_upload_bytes(&tree, station)?;
    }
    let (active, plan_bytes) = metered_route(&tree, keys)?;
    routing_bytes += plan_bytes;
    meter.record_routing_bytes(routing_bytes);
    meter.record_stations_pruned(active.iter().filter(|&&a| !a).count() as u64);
    Ok(active)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> FilterParams {
        FilterParams::new(1 << 12, 4).unwrap()
    }

    #[test]
    fn fanout_below_two_rejected() {
        for fanout in [0, 1] {
            assert!(RoutingTree::new(8, fanout, params(), 7).is_err());
        }
    }

    #[test]
    fn routes_only_subtrees_holding_the_keys() {
        let mut tree = RoutingTree::new(9, 2, params(), 7).unwrap();
        tree.insert_row(2, &[10, 20, 30]).unwrap();
        tree.insert_row(7, &[40, 50]).unwrap();
        // A key only station 2 holds routes to exactly station 2.
        assert_eq!(tree.route(&[10]), vec![2]);
        // Keys from both stations route to both, ascending.
        assert_eq!(tree.route(&[30, 40]), vec![2, 7]);
        // A key nobody holds routes nowhere, as does an empty probe set.
        assert!(tree.route(&[999_999]).is_empty());
        assert!(tree.route(&[]).is_empty());
    }

    #[test]
    fn degenerate_trees_fall_back_to_broadcast() {
        // One station: nothing to prune, everything routes everywhere.
        let tree = RoutingTree::new(1, 4, params(), 7).unwrap();
        assert!(tree.is_degenerate());
        assert_eq!(tree.route(&[123]), vec![0]);
        assert_eq!(tree.route(&[]), vec![0]);
        assert_eq!(tree.route_frames(&[5]), vec![(0, 1, vec![0])]);
        // Zero stations: empty fallback.
        let tree = RoutingTree::new(0, 4, params(), 7).unwrap();
        assert!(tree.route(&[123]).is_empty());
        // Fanout above the station count still builds a working one-root
        // tree (not degenerate — the root can prune the whole deployment).
        let mut tree = RoutingTree::new(3, 8, params(), 7).unwrap();
        assert!(!tree.is_degenerate());
        tree.insert_row(1, &[77]).unwrap();
        assert_eq!(tree.route(&[77]), vec![1]);
        assert!(tree.route(&[78]).is_empty());
    }

    #[test]
    fn insert_remove_interleaving_equals_fresh_build() {
        let mut incremental = RoutingTree::new(6, 3, params(), 11).unwrap();
        let rows: [(usize, &[u64]); 4] = [(0, &[1, 2, 3]), (4, &[2, 9]), (4, &[50, 60]), (5, &[7])];
        for &(station, keys) in &rows {
            incremental.insert_row(station, keys).unwrap();
        }
        // Shared key 2 survives removing only one of its rows.
        incremental.remove_row(0, &[1, 2, 3]).unwrap();
        let mut fresh = RoutingTree::new(6, 3, params(), 11).unwrap();
        for &(station, keys) in &rows[1..] {
            fresh.insert_row(station, keys).unwrap();
        }
        assert_eq!(incremental, fresh);
        assert_eq!(incremental.route(&[2]), vec![4]);
        // Removing the remaining rows restores the empty tree.
        incremental.remove_row(4, &[2, 9]).unwrap();
        incremental.remove_row(4, &[50, 60]).unwrap();
        incremental.remove_row(5, &[7]).unwrap();
        assert_eq!(incremental, RoutingTree::new(6, 3, params(), 11).unwrap());
    }

    #[test]
    fn removal_of_uninserted_keys_errors() {
        let mut tree = RoutingTree::new(2, 2, params(), 3).unwrap();
        assert!(tree.remove_row(0, &[42]).is_err());
        assert!(tree.insert_row(9, &[1]).is_err(), "unknown station");
        assert!(tree.remove_row(9, &[1]).is_err(), "unknown station");
    }

    #[test]
    fn route_frames_group_by_bottom_subtree() {
        let mut tree = RoutingTree::new(10, 4, params(), 5).unwrap();
        tree.insert_row(0, &[100]).unwrap();
        tree.insert_row(3, &[100]).unwrap();
        tree.insert_row(9, &[100]).unwrap();
        let frames = tree.route_frames(&[100]);
        assert_eq!(
            frames,
            vec![(0, 4, vec![0, 3]), (8, 10, vec![9])],
            "targets grouped by their fanout-4 leaf chunk"
        );
    }

    #[test]
    fn dataset_tree_covers_every_local_row() {
        let dataset = Dataset::small(61);
        let config = DiMatchingConfig::default();
        let tree = RoutingTree::from_dataset(&dataset, 3, &config).unwrap();
        assert_eq!(tree.station_count(), dataset.stations().len());
        // Soundness witness: every row's own keys route to (at least) the
        // station holding the row.
        let rows = station_row_keys(&dataset, &config).unwrap();
        for (station, station_rows) in rows.iter().enumerate() {
            for keys in station_rows.values() {
                assert!(
                    tree.route(keys).contains(&(station as u32)),
                    "station {station} pruned for its own row"
                );
            }
        }
    }
}
