//! Standing queries over live traffic: the streaming DI-matching session.
//!
//! The batch pipeline rebuilds and re-broadcasts the whole filter for every
//! run — the right shape for one-shot queries, and exactly the wrong one
//! for the paper's own motivating workload (Section III-A's continuous
//! monitoring), where the query set is long-lived and only *changes* a
//! little between epochs. A [`StreamingSession`] keeps the query set
//! standing:
//!
//! * the **data center** maintains one [`CountingWbf`] over every live
//!   query's `(key, weight)` pairs — [`StreamingSession::insert_query`] and
//!   [`StreamingSession::remove_query`] mutate it in place, no rebuilds;
//! * each **epoch** ([`StreamingSession::run_epoch`]) broadcasts a
//!   [`StationUpdate`](crate::wire::StationUpdate): the full filter once at
//!   session start, then only the positions whose visible state changed —
//!   the [`FilterDelta`](crate::wire::FilterDelta) the counting filter
//!   tracked while queries churned;
//! * **base stations** hold their decoded filter across epochs and apply
//!   deltas shard-locally under any [`ExecutionMode`] — a pure CDR-churn
//!   epoch (new traffic, same queries) costs a near-empty delta frame plus
//!   the scans, never a re-broadcast.
//!
//! The session pins its filter geometry at creation (incremental updates
//! cannot resize a hash table without rehashing everything, i.e. a
//! rebuild), and the counting filter's rebuild-equivalence guarantee makes
//! the whole path checkable: after any update sequence the station-side
//! state byte-matches a from-scratch [`run_pipeline`](crate::run_pipeline)
//! over the surviving query set at the same geometry — asserted across all
//! four execution modes by the streaming conformance suite.
//!
//! Epoch scans honor [`DiMatchingConfig::scan_algorithm`] like the batch
//! pipeline: the dynamic-pruning rungs skip only provably reportless work,
//! and the counting filter's cached score-bound universe is invalidated by
//! every insert/remove, so churn can never leave a stale bound behind.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use dipm_core::{encode, CountingWbf, FilterParams, Weight, WeightSet, WeightedBloomFilter};
use dipm_distsim::{
    block_on_all, run_station_shards, run_stations, CostMeter, ExecutionMode, LatencyModel,
    Mailbox, Network, NodeId, TrafficClass, VirtualClock, DATA_CENTER,
};
use dipm_mobilenet::{Dataset, UserId};

use crate::basestation::{scan_shard_wbf, BaseStation};
use crate::config::{DiMatchingConfig, RoutingPolicy};
use crate::datacenter::{aggregate_and_rank, prepare_build, sized_params, BuildStats};
use crate::error::{ProtocolError, Result};
use crate::pipeline::{collect_station_reports, PipelineOptions};
use crate::query::PatternQuery;
use crate::result::{Method, MethodDetails, QueryOutcome};
use crate::routing::{self, RoutingTree};
use crate::strategy::CENTER_ENTRY_BYTES;
use crate::wire::{self, FilterDelta, StationUpdate};

/// Handle to one live query of a [`StreamingSession`]; returned by
/// [`StreamingSession::insert_query`] and consumed by
/// [`StreamingSession::remove_query`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamQueryId(pub u64);

/// One live query as the center tracks it: exactly the pairs it inserted,
/// so removal can undo them pair for pair.
#[derive(Debug)]
struct LiveQuery {
    pairs: Vec<(u64, Weight)>,
    total: u64,
    combinations: usize,
}

/// The session's standing routing state under a tree policy: the hot
/// Bloofi tree plus the per-station row keys it currently holds — the base
/// each epoch's dataset is diffed against, so only changed rows touch the
/// tree and only changed stations re-upload summaries.
#[derive(Debug)]
struct SessionRouting {
    tree: RoutingTree,
    rows: Vec<BTreeMap<UserId, Vec<u64>>>,
}

/// One base station's cross-epoch state: its decoded filter, the live
/// query volumes, and the last epoch it applied.
#[derive(Debug, Default)]
struct StationState {
    filter: Option<WeightedBloomFilter>,
    totals: Vec<u64>,
    applied_epoch: u64,
}

impl StationState {
    /// Applies one epoch's update frame, enforcing the epoch protocol: a
    /// delta may only extend the state the previous epoch left behind.
    fn apply(&mut self, update: StationUpdate, expected_epoch: u64) -> Result<()> {
        if update.epoch() != expected_epoch {
            return Err(ProtocolError::malformed_report(format!(
                "station update for epoch {} while expecting {expected_epoch}",
                update.epoch()
            )));
        }
        match update {
            StationUpdate::Full {
                query_totals,
                filter,
                ..
            } => {
                self.filter = Some(encode::decode_wbf(filter)?);
                self.totals = query_totals;
            }
            StationUpdate::Delta {
                query_totals,
                delta,
                ..
            } => {
                let filter = self.filter.as_mut().ok_or_else(|| {
                    ProtocolError::malformed_report("delta update before any full broadcast")
                })?;
                if expected_epoch != self.applied_epoch + 1 {
                    return Err(ProtocolError::malformed_report(format!(
                        "delta for epoch {expected_epoch} on top of epoch {}",
                        self.applied_epoch
                    )));
                }
                for (pos, diff) in &delta.entries {
                    filter.apply_diff(*pos, diff)?;
                }
                self.totals = query_totals;
            }
        }
        self.applied_epoch = expected_epoch;
        Ok(())
    }

    fn view(&self) -> Result<(&WeightedBloomFilter, &[u64])> {
        let filter = self
            .filter
            .as_ref()
            .ok_or_else(|| ProtocolError::malformed_report("station scanned before any update"))?;
        Ok((filter, &self.totals))
    }
}

/// One tenant's epoch, planned but not yet executed: the encoded update
/// frames, who gets which, and the bookkeeping the finish phase needs.
/// Produced by `plan_epoch`, consumed by `finish_epoch`; between the two,
/// the interleaved engine broadcasts and executes any number of tenants'
/// plans over shared station links.
#[derive(Debug)]
struct EpochPlan {
    epoch: u64,
    clock_base: u64,
    start: Instant,
    /// Per-station routing mask (all `true` under broadcast-all).
    active: Vec<bool>,
    broadcast: EpochBroadcast,
    full_frame: Option<Bytes>,
    delta_frame: Option<Bytes>,
    full_stations: Vec<usize>,
    delta_stations: Vec<usize>,
    full_frame_len: usize,
    /// Filled by the broadcast phase.
    broadcast_bytes: u64,
}

/// How one epoch's filter state reached the stations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochBroadcast {
    /// The full filter (session start).
    Full,
    /// Only the changed positions.
    Delta {
        /// Number of changed positions in the frame (zero for a pure
        /// CDR-churn epoch).
        entries: usize,
    },
}

/// The result of one streaming epoch: the merged ranking over the live
/// query set plus the epoch's broadcast economics.
#[derive(Debug, Clone)]
pub struct EpochOutcome {
    /// The epoch number (0 is the session's first).
    pub epoch: u64,
    /// The merged WBF verdict over this epoch's dataset.
    pub outcome: QueryOutcome,
    /// How the filter state was disseminated to up-to-date stations. A
    /// routed delta epoch may additionally resync re-targeted stale
    /// stations (pruned in an earlier epoch) with a full frame.
    pub broadcast: EpochBroadcast,
    /// Bytes this epoch's dissemination actually moved (each frame × its
    /// recipients — equals the outcome's `query_bytes` meter).
    pub broadcast_bytes: u64,
    /// Bytes a full rebuild broadcast would have moved this epoch — the
    /// rebuild-vs-delta economics `repro streaming` reports.
    pub rebuild_bytes: u64,
    /// The epoch's modeled per-station critical paths. `Some` only under
    /// [`ExecutionMode::Async`]; ticks continue across epochs (epoch `n+1`
    /// is stamped from epoch `n`'s makespan).
    pub latency: Option<dipm_distsim::LatencyReport>,
}

/// A standing-query DI-matching session over evolving data.
///
/// # Examples
///
/// ```
/// use dipm_distsim::ExecutionMode;
/// use dipm_mobilenet::Dataset;
/// use dipm_protocol::{DiMatchingConfig, PatternQuery, PipelineOptions, StreamingSession};
///
/// # fn main() -> Result<(), dipm_protocol::ProtocolError> {
/// let day0 = Dataset::small(7);
/// let probe = day0.users()[0];
/// let query = PatternQuery::from_fragments(day0.fragments(probe.id).unwrap())?;
///
/// let mut session = StreamingSession::new(
///     &[query],
///     DiMatchingConfig::default(),
///     PipelineOptions::default(),
/// )?;
/// // Epoch 0 broadcasts the full filter once…
/// let first = session.run_epoch(&day0)?;
/// assert!(first.outcome.ranked.contains(&probe.id));
/// // …and a pure CDR-churn epoch re-broadcasts nothing but a tiny delta.
/// let day1 = Dataset::small(8);
/// let next = session.run_epoch(&day1)?;
/// assert!(next.broadcast_bytes < first.broadcast_bytes / 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct StreamingSession {
    config: DiMatchingConfig,
    options: PipelineOptions,
    params: FilterParams,
    center: CountingWbf,
    live: BTreeMap<StreamQueryId, LiveQuery>,
    next_id: u64,
    /// The next epoch to run; station states trail it by one once running.
    epoch: u64,
    stations: Vec<StationState>,
    /// Whether the next epoch must broadcast the full filter: true at
    /// session start, and re-armed by any failed epoch — a failure can
    /// leave stations mid-protocol (some updated, some not, pending diffs
    /// drained), and a full broadcast is the resync that makes the next
    /// epoch correct regardless of where the failure struck.
    needs_full: bool,
    /// Cached full-broadcast frame length (the rebuild-economics
    /// yardstick). Invalidated on query churn, so idle CDR-churn epochs
    /// skip the snapshot-and-intern pass entirely.
    cached_full_len: Option<usize>,
    /// The standing routing tree under [`RoutingPolicy::Tree`]; built
    /// lazily on the first routed epoch (geometry pinned there, like the
    /// session filter) and kept hot by per-epoch row diffs. Dropped by a
    /// failed epoch, which may have left the diff half-applied — the next
    /// epoch rebuilds it from scratch.
    routing: Option<SessionRouting>,
    /// The virtual tick the session has reached (async mode): each epoch's
    /// broadcast is stamped from the previous epoch's makespan, so modeled
    /// time flows monotonically across the session.
    clock_base: u64,
}

impl StreamingSession {
    /// Opens a session over an initial standing-query set.
    ///
    /// The filter geometry is fixed here — sized for the initial set's
    /// distinct keys (or pinned by
    /// [`DiMatchingConfig::fixed_geometry`]) — and never changes: pin an
    /// explicit geometry with headroom if the query set is expected to
    /// grow far beyond its initial size.
    ///
    /// # Errors
    ///
    /// Propagates configuration, pattern and filter errors.
    pub fn new(
        initial: &[PatternQuery],
        config: DiMatchingConfig,
        options: PipelineOptions,
    ) -> Result<StreamingSession> {
        config.validate()?;
        // One preparation pass per query, reused for both the joint sizing
        // (distinct keys across the whole set) and the registrations.
        let prepared: Vec<crate::datacenter::PreparedBuild> = initial
            .iter()
            .map(|query| prepare_build(std::slice::from_ref(query), &config))
            .collect::<Result<_>>()?;
        let distinct_keys: std::collections::BTreeSet<u64> = prepared
            .iter()
            .flat_map(|build| build.pairs.iter().map(|&(key, _)| key))
            .collect();
        let params = sized_params(distinct_keys.len().max(1), &config)?;
        let mut session = StreamingSession {
            center: CountingWbf::new(params, config.seed),
            config,
            options,
            params,
            live: BTreeMap::new(),
            next_id: 0,
            epoch: 0,
            stations: Vec::new(),
            needs_full: true,
            cached_full_len: None,
            routing: None,
            clock_base: 0,
        };
        for build in prepared {
            session.register_prepared(build)?;
        }
        Ok(session)
    }

    /// Registers a new standing query: its combination pairs are inserted
    /// into the counting filter and broadcast as a delta at the next epoch.
    ///
    /// # Errors
    ///
    /// Propagates pattern and filter errors (including counter overflow).
    pub fn insert_query(&mut self, query: &PatternQuery) -> Result<StreamQueryId> {
        let build = prepare_build(std::slice::from_ref(query), &self.config)?;
        self.register_prepared(build)
    }

    fn register_prepared(
        &mut self,
        build: crate::datacenter::PreparedBuild,
    ) -> Result<StreamQueryId> {
        self.cached_full_len = None;
        let pairs: Vec<(u64, Weight)> = build.pairs.into_iter().collect();
        for &(key, weight) in &pairs {
            self.center.insert(key, weight)?;
        }
        let id = StreamQueryId(self.next_id);
        self.next_id += 1;
        self.live.insert(
            id,
            LiveQuery {
                pairs,
                total: build.query_totals[0],
                combinations: build.combinations,
            },
        );
        Ok(id)
    }

    /// Retires a standing query: its pairs are removed from the counting
    /// filter (reference-counted, so pairs shared with other live queries
    /// survive) and the retired positions go out as the next delta.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::UnknownStreamQuery`] if `id` is not live.
    pub fn remove_query(&mut self, id: StreamQueryId) -> Result<()> {
        self.cached_full_len = None;
        let query = self
            .live
            .remove(&id)
            .ok_or(ProtocolError::UnknownStreamQuery { id: id.0 })?;
        for &(key, weight) in &query.pairs {
            self.center
                .remove(key, weight)
                .map_err(ProtocolError::Core)?;
        }
        Ok(())
    }

    /// The ids of the currently live queries, in insertion order.
    pub fn live_queries(&self) -> Vec<StreamQueryId> {
        self.live.keys().copied().collect()
    }

    /// The session's pinned filter geometry.
    pub fn params(&self) -> FilterParams {
        self.params
    }

    /// The next epoch [`StreamingSession::run_epoch`] will run.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The center filter's occupancy — the signal for scheduling a
    /// deliberate rebuild at a larger geometry once churn degrades it.
    pub fn fill_ratio(&self) -> f64 {
        self.center.fill_ratio()
    }

    /// The live queries' global volumes, in id order.
    fn totals(&self) -> Vec<u64> {
        self.live.values().map(|q| q.total).collect()
    }

    fn build_stats(&self) -> BuildStats {
        BuildStats {
            combinations: self.live.values().map(|q| q.combinations).sum(),
            inserted_values: self.center.live(),
            bits: self.params.bits(),
            hashes: self.params.hashes(),
        }
    }

    /// Runs one epoch over `dataset`: broadcasts the pending filter state
    /// (full on the first epoch, delta after), scans every station's
    /// current local store under the session's [`ExecutionMode`], and
    /// aggregates one merged ranking over the live query set.
    ///
    /// The dataset may change freely between epochs (CDR churn) as long as
    /// its station count stays the same — station identity is positional.
    ///
    /// A failed epoch does not wedge the session: the failure may have
    /// left stations mid-protocol, so the next `run_epoch` resyncs them
    /// with a full broadcast and continues from there.
    ///
    /// # Errors
    ///
    /// Propagates configuration, pattern, filter, wire and network errors,
    /// and rejects a dataset whose station count differs from the epoch
    /// that initialized the session.
    pub fn run_epoch(&mut self, dataset: &Dataset) -> Result<EpochOutcome> {
        // A solo session is the one-tenant case of the interleaved engine:
        // fresh per-epoch link state means every frame is stamped straight
        // from `clock_base`, exactly as a lone center would.
        let mut links = Vec::new();
        let mut outcomes = run_interleaved_epochs(&mut [self], dataset, &mut links)?;
        Ok(outcomes.pop().expect("one outcome per session"))
    }

    /// Keeps the routing tree synchronized with this epoch's dataset —
    /// built whole on the first routed epoch, row-diffed against the
    /// previous epoch after — then routes the union of the live queries'
    /// probe keys through it. Summary refreshes (changed stations only) and
    /// the routed plan are pushed through the wire codecs and metered.
    /// Returns the per-station active mask.
    fn route_epoch(
        &mut self,
        dataset: &Dataset,
        fanout: usize,
        meter: &CostMeter,
    ) -> Result<Vec<bool>> {
        let rows = routing::station_row_keys(dataset, &self.config)?;
        let station_count = rows.len();
        let changed: Vec<usize> = match &mut self.routing {
            None => {
                let params = routing::summary_params(&rows)?;
                let mut tree = RoutingTree::new(station_count, fanout, params, self.config.seed)?;
                for (station, station_rows) in rows.iter().enumerate() {
                    for keys in station_rows.values() {
                        tree.insert_row(station, keys)?;
                    }
                }
                self.routing = Some(SessionRouting { tree, rows });
                (0..station_count).collect()
            }
            Some(routing_state) => {
                let mut touched = Vec::new();
                for (station, new_rows) in rows.iter().enumerate() {
                    let old_rows = &routing_state.rows[station];
                    let mut station_touched = false;
                    for (user, old_keys) in old_rows {
                        if new_rows.get(user) != Some(old_keys) {
                            routing_state.tree.remove_row(station, old_keys)?;
                            station_touched = true;
                        }
                    }
                    for (user, new_keys) in new_rows {
                        if old_rows.get(user) != Some(new_keys) {
                            routing_state.tree.insert_row(station, new_keys)?;
                            station_touched = true;
                        }
                    }
                    if station_touched {
                        touched.push(station);
                    }
                }
                routing_state.rows = rows;
                touched
            }
        };
        let routing_state = self.routing.as_ref().expect("tree built above");
        let mut routing_bytes = 0u64;
        for &station in &changed {
            routing_bytes += routing::summary_upload_bytes(&routing_state.tree, station)?;
        }
        let keys: Vec<u64> = self
            .live
            .values()
            .flat_map(|q| q.pairs.iter().map(|&(key, _)| key))
            .collect::<std::collections::BTreeSet<u64>>()
            .into_iter()
            .collect();
        let (active, plan_bytes) = routing::metered_route(&routing_state.tree, &keys)?;
        meter.record_routing_bytes(routing_bytes + plan_bytes);
        meter.record_stations_pruned(active.iter().filter(|&&a| !a).count() as u64);
        Ok(active)
    }

    /// Phase 1 of an epoch: everything the center decides *before* any
    /// frame flies — guards, lazy station init, routing, the pending-diff
    /// drain and the encoded update frames. Pure center-side work, so a
    /// service can plan every tenant before any of them executes.
    fn plan_epoch(&mut self, dataset: &Dataset, meter: &CostMeter) -> Result<EpochPlan> {
        let start = Instant::now();
        let station_count = dataset.stations().len();
        if !self.stations.is_empty() && self.stations.len() != station_count {
            return Err(ProtocolError::invalid_config(format!(
                "dataset has {station_count} stations, session was opened with {}",
                self.stations.len()
            )));
        }
        let epoch = self.epoch;
        let totals = self.totals();

        if self.stations.is_empty() {
            self.stations = (0..station_count)
                .map(|_| StationState::default())
                .collect();
        }

        // Query routing: keep the Bloofi tree hot against this epoch's CDR
        // churn and target only stations whose summaries can match the live
        // query set. The default broadcasts to all.
        let active: Vec<bool> = match self.config.routing {
            RoutingPolicy::Tree { fanout } => self.route_epoch(dataset, fanout, meter)?,
            RoutingPolicy::BroadcastAll => vec![true; station_count],
        };

        // The rebuild-economics yardstick: what a full broadcast would
        // weigh this epoch. Computed without serializing the frame, and
        // cached until query churn invalidates it — a pure CDR-churn epoch
        // pays neither the snapshot nor the interning pass.
        let full_frame_len = self.full_frame_len(&totals);

        // Drain the pending diff exactly once per epoch. Stations on the
        // delta path are exactly those synced to the previous drain point
        // (they applied the last epoch, and every epoch before it, to a
        // full base), so the drained entries extend their state; everyone
        // else — session start, post-failure resync, or a station an
        // earlier epoch's routing pruned and this one re-targets — gets
        // this epoch's full snapshot instead.
        let delta = FilterDelta {
            entries: self.center.drain_dirty(),
        };
        let delta_entries = delta.entries.len();
        let mut full_stations: Vec<usize> = Vec::new();
        let mut delta_stations: Vec<usize> = Vec::new();
        for (i, state) in self.stations.iter().enumerate() {
            if !active[i] {
                continue;
            }
            let on_delta_path =
                !self.needs_full && state.filter.is_some() && state.applied_epoch + 1 == epoch;
            if on_delta_path {
                delta_stations.push(i);
            } else {
                full_stations.push(i);
            }
        }
        let broadcast = if self.needs_full {
            EpochBroadcast::Full
        } else {
            EpochBroadcast::Delta {
                entries: delta_entries,
            }
        };
        let full_frame = if full_stations.is_empty() {
            None
        } else {
            let frame = wire::encode_station_update(&StationUpdate::Full {
                epoch,
                query_totals: totals.clone(),
                filter: encode::encode_wbf(&self.center.snapshot())?,
            })?;
            debug_assert_eq!(frame.len(), full_frame_len);
            Some(frame)
        };
        let delta_frame = if delta_stations.is_empty() {
            None
        } else {
            Some(wire::encode_station_update(&StationUpdate::Delta {
                epoch,
                query_totals: totals,
                delta,
            })?)
        };
        Ok(EpochPlan {
            epoch,
            clock_base: self.clock_base,
            start,
            active,
            broadcast,
            full_frame,
            delta_frame,
            full_stations,
            delta_stations,
            full_frame_len,
            broadcast_bytes: 0,
        })
    }

    /// The cached full-broadcast frame length (see `cached_full_len`).
    fn full_frame_len(&mut self, totals: &[u64]) -> usize {
        match self.cached_full_len {
            Some(len) => len,
            None => {
                let len =
                    1 + 8 + 4 + totals.len() * 8 + encode::encoded_wbf_len(&self.center.snapshot());
                self.cached_full_len = Some(len);
                len
            }
        }
    }

    /// What the *next* epoch would send each of `station_count` stations,
    /// in bytes — the admission currency of
    /// [`Service`](crate::Service) backpressure. Previews the pending diff
    /// without draining it and mutates nothing observable (only the
    /// full-frame length cache), so a deferred tenant's session is exactly
    /// as it was. Routing-blind on purpose: admission budgets against the
    /// worst case where every station is targeted.
    pub(crate) fn planned_station_bytes(&mut self, station_count: usize) -> Result<Vec<u64>> {
        let totals = self.totals();
        let full_len = self.full_frame_len(&totals) as u64;
        let delta_len = wire::encode_station_update(&StationUpdate::Delta {
            epoch: self.epoch,
            query_totals: totals,
            delta: FilterDelta {
                entries: self.center.pending_dirty(),
            },
        })?
        .len() as u64;
        let epoch = self.epoch;
        Ok((0..station_count)
            .map(|i| {
                let on_delta_path = !self.needs_full
                    && self
                        .stations
                        .get(i)
                        .is_some_and(|s| s.filter.is_some() && s.applied_epoch + 1 == epoch);
                if on_delta_path {
                    delta_len
                } else {
                    full_len
                }
            })
            .collect())
    }

    /// The split borrow the execution phase needs: every station's mutable
    /// state next to the scan configuration.
    fn exec_parts(&mut self) -> (&mut [StationState], &DiMatchingConfig) {
        (&mut self.stations, &self.config)
    }

    /// Phase 4 of an epoch: Algorithm 3 intake (shared with the batch
    /// pipeline), aggregation, and the epoch-advance bookkeeping.
    fn finish_epoch(
        &mut self,
        plan: EpochPlan,
        center: &Mailbox,
        network: &Network,
        shard_count: u32,
        station_count: usize,
    ) -> Result<EpochOutcome> {
        let collected =
            collect_station_reports(center, network, shard_count, station_count as u32)?;
        let latency = matches!(self.options.mode, ExecutionMode::Async { .. })
            .then(|| collected.latency_report());
        let mut reports: Vec<(dipm_mobilenet::UserId, Weight)> = Vec::new();
        for (report_frame, _) in &collected.frames {
            for (query, user, weight) in
                wire::decode_tagged_weight_reports(report_frame.payload.clone())?
            {
                if query != 0 {
                    return Err(ProtocolError::malformed_report(format!(
                        "streaming report references section {query} (sessions have one)"
                    )));
                }
                reports.push((user, weight));
            }
        }
        network
            .meter()
            .record_storage(reports.len() as u64 * CENTER_ENTRY_BYTES);
        let weights = aggregate_and_rank(reports, self.options.top_k);
        let cost = network.meter().report();
        let outcome = QueryOutcome {
            method: Method::Wbf,
            ranked: weights.iter().map(|r| r.user).collect(),
            details: MethodDetails::Wbf {
                weights,
                build: self.build_stats(),
            },
            cost,
            elapsed: plan.start.elapsed(),
        };
        self.clock_base = self.clock_base.max(collected.makespan);
        self.epoch += 1;
        self.needs_full = false;

        Ok(EpochOutcome {
            epoch: plan.epoch,
            broadcast: plan.broadcast,
            broadcast_bytes: plan.broadcast_bytes,
            rebuild_bytes: plan.full_frame_len as u64 * station_count as u64,
            latency,
            outcome,
        })
    }

    /// The latency dimension of the *previous* epoch is carried inside its
    /// [`EpochOutcome::outcome`]; this is the virtual tick the session has
    /// reached (the last async epoch's makespan).
    pub fn clock_base(&self) -> u64 {
        self.clock_base
    }

    /// Serializes the center's entire session state into one versioned
    /// [`SessionCheckpoint`](crate::wire::SessionCheckpoint) frame: the
    /// live-query registry, the counting filter's refcounts, the pending
    /// delta baselines and the per-station protocol positions.
    ///
    /// Station filters are deliberately absent — stations retain their own
    /// state across a center crash, and [`StreamingSession::recover`]
    /// resyncs them via the next delta instead of a full re-broadcast.
    ///
    /// # Errors
    ///
    /// Propagates wire-encoding errors.
    pub fn checkpoint(&self) -> Result<Bytes> {
        wire::encode_session_checkpoint(&wire::SessionCheckpoint {
            epoch: self.epoch,
            clock_base: self.clock_base,
            needs_full: self.needs_full,
            bits: self.params.bits() as u64,
            hashes: self.params.hashes(),
            seed: self.config.seed,
            next_id: self.next_id,
            queries: self
                .live
                .iter()
                .map(|(id, query)| wire::CheckpointQuery {
                    id: id.0,
                    total: query.total,
                    combinations: query.combinations as u64,
                    pairs: query.pairs.clone(),
                })
                .collect(),
            counts: self.center.counts_snapshot(),
            baselines: self
                .center
                .dirty_baselines()
                .iter()
                .map(|(&pos, set)| (pos, set.clone()))
                .collect(),
            stations: self
                .stations
                .iter()
                .map(|state| wire::CheckpointStation {
                    has_filter: state.filter.is_some(),
                    applied_epoch: state.applied_epoch,
                })
                .collect(),
        })
    }

    /// Dissolves the session into its stations' retained memories — the
    /// state that *survives* a center crash (each base station holds its
    /// own filter). Pair with [`StreamingSession::checkpoint`] to model a
    /// crash: the checkpoint is what the center persisted, the memories
    /// are what the stations still hold.
    pub fn release_stations(self) -> Vec<StationMemory> {
        self.stations.into_iter().map(StationMemory).collect()
    }

    /// Rebuilds a center from a [`checkpoint`](StreamingSession::checkpoint)
    /// frame and the stations' retained memories, resuming the session
    /// exactly where it stopped: the next epoch drains the same delta the
    /// crashed center would have, so the resumed run's station results and
    /// wire bytes are identical to an uninterrupted one.
    ///
    /// The counting filter is rebuilt by replaying the recorded queries and
    /// verified against the checkpoint's recorded refcounts, so a frame
    /// whose registry and counts disagree is rejected whole. Under
    /// [`RoutingPolicy::Tree`] the standing Bloofi tree is *not* part of
    /// the checkpoint — the first recovered epoch rebuilds it from the
    /// epoch's dataset and re-uploads station summaries (routing bytes are
    /// re-paid; filter dissemination stays delta-priced).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::MalformedReport`] for a frame that fails
    /// wire validation and [`ProtocolError::CheckpointMismatch`] when the
    /// frame disagrees with `config` (seed, pinned geometry) or with the
    /// offered station memories (count, filter presence or geometry,
    /// applied epochs). Nothing is rebuilt on rejection.
    pub fn recover(
        frame: Bytes,
        stations: Vec<StationMemory>,
        config: DiMatchingConfig,
        options: PipelineOptions,
    ) -> Result<StreamingSession> {
        let checkpoint = wire::decode_session_checkpoint(frame)?;
        config.validate()?;
        if checkpoint.seed != config.seed {
            return Err(ProtocolError::checkpoint_mismatch(format!(
                "checkpoint hashed with seed {}, config hashes with {}",
                checkpoint.seed, config.seed
            )));
        }
        let params = FilterParams::new(checkpoint.bits as usize, checkpoint.hashes)?;
        if let Some(fixed) = config.fixed_geometry {
            if fixed != params {
                return Err(ProtocolError::checkpoint_mismatch(format!(
                    "checkpoint geometry {}x{} disagrees with pinned geometry {}x{}",
                    checkpoint.bits,
                    checkpoint.hashes,
                    fixed.bits(),
                    fixed.hashes()
                )));
            }
        }
        if stations.len() != checkpoint.stations.len() {
            return Err(ProtocolError::checkpoint_mismatch(format!(
                "checkpoint records {} stations, {} memories offered",
                checkpoint.stations.len(),
                stations.len()
            )));
        }
        for (i, (memory, recorded)) in stations.iter().zip(&checkpoint.stations).enumerate() {
            if memory.0.filter.is_some() != recorded.has_filter {
                return Err(ProtocolError::checkpoint_mismatch(format!(
                    "station {i} filter presence disagrees with the checkpoint"
                )));
            }
            if memory.0.applied_epoch != recorded.applied_epoch {
                return Err(ProtocolError::checkpoint_mismatch(format!(
                    "station {i} applied epoch {}, checkpoint records {}",
                    memory.0.applied_epoch, recorded.applied_epoch
                )));
            }
            if let Some(filter) = &memory.0.filter {
                if filter.bit_len() as u64 != checkpoint.bits
                    || filter.hashes() != checkpoint.hashes
                {
                    return Err(ProtocolError::checkpoint_mismatch(format!(
                        "station {i} filter geometry disagrees with the checkpoint"
                    )));
                }
            }
        }
        let mut center = CountingWbf::new(params, config.seed);
        let mut live = BTreeMap::new();
        for query in &checkpoint.queries {
            for &(key, weight) in &query.pairs {
                center.insert(key, weight)?;
            }
            live.insert(
                StreamQueryId(query.id),
                LiveQuery {
                    pairs: query.pairs.clone(),
                    total: query.total,
                    combinations: query.combinations as usize,
                },
            );
        }
        if center.counts_snapshot() != checkpoint.counts {
            return Err(ProtocolError::checkpoint_mismatch(
                "replaying the recorded queries does not reproduce the recorded filter state",
            ));
        }
        let baselines: BTreeMap<u32, WeightSet> = checkpoint.baselines.into_iter().collect();
        center
            .restore_dirty(baselines)
            .map_err(ProtocolError::Core)?;
        Ok(StreamingSession {
            config,
            options,
            params,
            center,
            live,
            next_id: checkpoint.next_id,
            epoch: checkpoint.epoch,
            stations: stations.into_iter().map(|memory| memory.0).collect(),
            needs_full: checkpoint.needs_full,
            cached_full_len: None,
            routing: None,
            clock_base: checkpoint.clock_base,
        })
    }
}

/// One base station's state as it survives a center crash: its decoded
/// filter and the last epoch it applied. Produced by
/// [`StreamingSession::release_stations`], consumed by
/// [`StreamingSession::recover`].
#[derive(Debug)]
pub struct StationMemory(StationState);

impl StationMemory {
    /// The last epoch this station applied.
    pub fn applied_epoch(&self) -> u64 {
        self.0.applied_epoch
    }

    /// Whether the station holds a decoded filter.
    pub fn has_filter(&self) -> bool {
        self.0.filter.is_some()
    }
}

/// Phase 2 of an epoch: schedules the plan's frames onto the shared
/// per-station downlinks. Each station's link serializes: a frame's send
/// tick is the later of the tenant's clock and the tick the link finished
/// its previous frame, so concurrent tenants queue behind each other
/// exactly as they would on real station radios. With fresh (all-zero)
/// links — the solo case — every frame is stamped straight from the
/// tenant's `clock_base`, byte-identically to a lone session.
fn broadcast_plan(
    plan: &mut EpochPlan,
    latency: &LatencyModel,
    network: &Network,
    links: &mut [u64],
) -> Result<()> {
    let frames = [
        (&plan.full_frame, &plan.full_stations),
        (&plan.delta_frame, &plan.delta_stations),
    ];
    for (frame, stations) in frames {
        if let Some(frame) = frame {
            let serialize = latency.ticks_per_byte.saturating_mul(frame.len() as u64);
            let targets: Vec<(NodeId, u64)> = stations
                .iter()
                .map(|&i| {
                    let tick = plan.clock_base.max(links[i]);
                    links[i] = tick.saturating_add(serialize);
                    (NodeId::base_station(i as u32), tick)
                })
                .collect();
            network.broadcast_each_at(DATA_CENTER, targets, TrafficClass::Query, frame)?;
            // Each recipient holds its copy of the frame while live.
            network
                .meter()
                .record_storage(frame.len() as u64 * stations.len() as u64);
            plan.broadcast_bytes += frame.len() as u64 * stations.len() as u64;
        }
    }
    Ok(())
}

/// Per-tenant per-epoch runtime: the tenant's private network (its own
/// meter — isolation is structural) and its planned epoch.
struct TenantEpoch {
    network: Network,
    center: Mailbox,
    mailboxes: Vec<Mailbox>,
    plan: EpochPlan,
}

/// Runs one epoch for every session, interleaved over the shared executor
/// and the shared per-station links.
///
/// This is *the* epoch engine: a solo [`StreamingSession::run_epoch`] is
/// the one-session call of the same code, which is what makes tenant
/// isolation a structural guarantee rather than a property to test into
/// existence — each tenant runs on its own [`Network`] (own meter, own
/// mailboxes), so its byte and operation accounting cannot observe its
/// neighbors. Only modeled *time* couples tenants: under
/// [`ExecutionMode::Async`] all tenants share one [`VirtualClock`] and the
/// `links` vector serializes each station's downlink across tenants.
///
/// All sessions must share the same [`PipelineOptions`] (the service
/// guarantees this); the first session's options drive the executor.
///
/// On error every session is marked for a full resync — the failure may
/// have struck mid-protocol for any of them.
pub(crate) fn run_interleaved_epochs(
    sessions: &mut [&mut StreamingSession],
    dataset: &Dataset,
    links: &mut Vec<u64>,
) -> Result<Vec<EpochOutcome>> {
    let result = interleaved_epochs_inner(sessions, dataset, links);
    if result.is_err() {
        for session in sessions.iter_mut() {
            session.needs_full = true;
            // The failure may have struck mid-diff, leaving the tree out of
            // step with its recorded rows; rebuild it next epoch.
            session.routing = None;
        }
    }
    result
}

fn interleaved_epochs_inner(
    sessions: &mut [&mut StreamingSession],
    dataset: &Dataset,
    links: &mut Vec<u64>,
) -> Result<Vec<EpochOutcome>> {
    if sessions.is_empty() {
        return Ok(Vec::new());
    }
    let mode = sessions[0].options.mode;
    let latency = sessions[0].options.latency;
    let shards = sessions[0].options.shards;
    let station_count = dataset.stations().len();
    if links.len() < station_count {
        links.resize(station_count, 0);
    }

    // One shared clock timeline across all tenants (async); each tenant
    // still gets a fresh network per epoch so nodes re-register and meters
    // stay private.
    let clock = match mode {
        ExecutionMode::Async { .. } => Some(Arc::new(VirtualClock::new())),
        _ => None,
    };

    // Phases 1+2 per tenant, in registration order: plan, then claim the
    // shared downlinks. The first tenant's frames are stamped exactly as a
    // solo run's; later tenants queue behind it.
    let mut tenants: Vec<TenantEpoch> = Vec::with_capacity(sessions.len());
    for session in sessions.iter_mut() {
        let network = match &clock {
            Some(clock) => Network::with_latency(session.options.latency, Arc::clone(clock)),
            None => Network::new(),
        };
        let center = network.register(DATA_CENTER)?;
        let mailboxes = (0..station_count)
            .map(|i| network.register(NodeId::base_station(i as u32)))
            .collect::<dipm_distsim::Result<Vec<_>>>()?;
        let mut plan = session.plan_epoch(dataset, network.meter())?;
        broadcast_plan(&mut plan, &latency, &network, links)?;
        tenants.push(TenantEpoch {
            network,
            center,
            mailboxes,
            plan,
        });
    }

    // Phase 3: execution. The dataset (and so the shard layout) is shared
    // across tenants — it is the same physical traffic every tenant's
    // standing queries watch.
    let empty = BTreeMap::new();
    let layouts: Vec<BaseStation<'_>> = dataset
        .stations()
        .iter()
        .map(|&station| {
            let locals = dataset.station_locals(station).unwrap_or(&empty);
            BaseStation::from_locals(station, locals, shards)
        })
        .collect();
    let shard_count = shards.count() as u32;

    match mode {
        ExecutionMode::Async { workers } => {
            // One future per (tenant, active station), all on one executor
            // and one virtual clock — tenants' epochs genuinely interleave.
            // The update is applied to the station's *retained* filter
            // before the scan, on the station's own virtual timeline.
            let clock = clock.as_ref().expect("async mode builds a clock");
            let mut futures = Vec::new();
            for (session, tenant) in sessions.iter_mut().zip(tenants.iter_mut()) {
                let epoch = tenant.plan.epoch;
                let mailboxes = std::mem::take(&mut tenant.mailboxes);
                let tenant_network = tenant.network.clone();
                let active = &tenant.plan.active;
                let (stations, config) = session.exec_parts();
                for (i, (mailbox, state)) in
                    mailboxes.into_iter().zip(stations.iter_mut()).enumerate()
                {
                    if !active[i] {
                        continue;
                    }
                    let network = tenant_network.clone();
                    let clock = Arc::clone(clock);
                    let layout = &layouts[i];
                    let model = latency;
                    futures.push(async move {
                        let envelope = mailbox.recv()?;
                        let mut station_now = envelope.deliver_at;
                        clock.sleep_until(station_now).await;
                        state.apply(wire::decode_station_update(envelope.payload)?, epoch)?;
                        let (filter, totals) = state.view()?;
                        let mut merged: Vec<(u32, dipm_mobilenet::UserId, Weight)> = Vec::new();
                        for shard_index in 0..layout.shard_count() {
                            let shard = layout.shard(shard_index);
                            station_now = station_now.saturating_add(model.scan_ticks(shard.len()));
                            clock.sleep_until(station_now).await;
                            merged.extend(scan_shard_wbf(
                                &[(0, filter, totals)],
                                shard,
                                config,
                                Some(network.meter()),
                            )?);
                            dipm_distsim::yield_now().await;
                        }
                        merged.sort_by_key(|&(q, user, _)| (q, user));
                        network.meter().record_scan_pass();
                        let payload = wire::encode_batch_reports(
                            shard_count,
                            i as u32,
                            station_now,
                            wire::encode_tagged_weight_reports(&merged)?,
                        );
                        network.send_at(
                            NodeId::base_station(i as u32),
                            DATA_CENTER,
                            TrafficClass::Report,
                            payload,
                            station_now,
                        )?;
                        Ok::<(), ProtocolError>(())
                    });
                }
            }
            let (results, _run) = block_on_all(workers, clock, futures);
            for result in results {
                result?;
            }
        }
        mode => {
            // Station-side decode under the epoch's execution mode, over
            // the union of every tenant's targeted stations — a pruned
            // station's mailbox must never be polled…
            let targeted: Vec<(usize, usize, &Mailbox)> = tenants
                .iter()
                .enumerate()
                .flat_map(|(t, tenant)| {
                    tenant
                        .mailboxes
                        .iter()
                        .enumerate()
                        .filter(move |&(i, _)| tenant.plan.active[i])
                        .map(move |(i, mailbox)| (t, i, mailbox))
                })
                .collect();
            let updates: Vec<StationUpdate> =
                run_stations(mode, &targeted, |_, &(_, _, mailbox)| {
                    let envelope = mailbox.recv()?;
                    wire::decode_station_update(envelope.payload)
                })
                .into_iter()
                .collect::<Result<_>>()?;
            // …apply shard-locally (cheap, deterministic)…
            for (&(t, i, _), update) in targeted.iter().zip(updates) {
                sessions[t].stations[i].apply(update, tenants[t].plan.epoch)?;
            }
            // …then one scan pass per (tenant, station) over the union
            // (tenant, station, shard) grid, identical to the batch
            // pipeline within each tenant.
            let grid: Vec<(usize, usize, usize)> = tenants
                .iter()
                .enumerate()
                .flat_map(|(t, tenant)| {
                    layouts
                        .iter()
                        .enumerate()
                        .filter(move |&(i, _)| tenant.plan.active[i])
                        .flat_map(move |(i, layout)| {
                            (0..layout.shard_count()).map(move |shard| (t, i, shard))
                        })
                })
                .collect();
            let views: Vec<(&[StationState], &DiMatchingConfig)> = sessions
                .iter()
                .map(|session| (&session.stations[..], &session.config))
                .collect();
            let meters: Vec<&CostMeter> = tenants.iter().map(|t| t.network.meter()).collect();
            let scanned = run_station_shards(mode, &grid, |_, &(t, station, shard)| {
                let (filter, totals) = views[t].0[station].view()?;
                scan_shard_wbf(
                    &[(0, filter, totals)],
                    layouts[station].shard(shard),
                    views[t].1,
                    Some(meters[t]),
                )
            });
            let mut shard_results = scanned.into_iter();
            for tenant in &tenants {
                for (i, layout) in layouts
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| tenant.plan.active[i])
                {
                    let mut merged: Vec<(u32, dipm_mobilenet::UserId, Weight)> = Vec::new();
                    for _ in 0..layout.shard_count() {
                        merged.extend(shard_results.next().expect("one result per grid entry")?);
                    }
                    merged.sort_by_key(|&(q, user, _)| (q, user));
                    tenant.network.meter().record_scan_pass();
                    let payload = wire::encode_batch_reports(
                        shard_count,
                        i as u32,
                        0,
                        wire::encode_tagged_weight_reports(&merged)?,
                    );
                    tenant.network.send(
                        NodeId::base_station(i as u32),
                        DATA_CENTER,
                        TrafficClass::Report,
                        payload,
                    )?;
                }
            }
        }
    }

    // Phase 4 per tenant.
    let mut outcomes = Vec::with_capacity(sessions.len());
    for (session, tenant) in sessions.iter_mut().zip(tenants) {
        outcomes.push(session.finish_epoch(
            tenant.plan,
            &tenant.center,
            &tenant.network,
            shard_count,
            station_count,
        )?);
    }
    Ok(outcomes)
}

/// One epoch's query churn for [`run_streaming`].
#[derive(Debug, Clone, Default)]
pub struct StreamingUpdate {
    /// Queries to register before the epoch runs.
    pub insert: Vec<PatternQuery>,
    /// Live queries to retire before the epoch runs.
    pub remove: Vec<StreamQueryId>,
}

impl StreamingUpdate {
    /// An epoch with no query churn (pure CDR churn).
    pub fn none() -> StreamingUpdate {
        StreamingUpdate::default()
    }
}

/// Drives a [`StreamingSession`] over a sequence of epochs: for each
/// `(dataset, update)` the update's removals and insertions are applied,
/// then the epoch runs over that dataset snapshot.
///
/// Returns one [`EpochOutcome`] per epoch, in order.
///
/// # Errors
///
/// Propagates session errors; see [`StreamingSession::run_epoch`].
pub fn run_streaming<'a, I>(
    initial: &[PatternQuery],
    epochs: I,
    config: DiMatchingConfig,
    options: PipelineOptions,
) -> Result<Vec<EpochOutcome>>
where
    I: IntoIterator<Item = (&'a Dataset, StreamingUpdate)>,
{
    let mut session = StreamingSession::new(initial, config, options)?;
    let mut outcomes = Vec::new();
    for (dataset, update) in epochs {
        for id in &update.remove {
            session.remove_query(*id)?;
        }
        for query in &update.insert {
            session.insert_query(query)?;
        }
        outcomes.push(session.run_epoch(dataset)?);
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{run_pipeline, SectionGrouping};
    use crate::strategy::Wbf;
    use dipm_distsim::LatencyModel;

    fn probe_query(dataset: &Dataset, index: usize) -> PatternQuery {
        let user = dataset.users()[index];
        PatternQuery::from_fragments(dataset.fragments(user.id).unwrap()).unwrap()
    }

    /// The from-scratch comparator: a merged batch run at the session's
    /// pinned geometry.
    fn rebuild_outcome(
        dataset: &Dataset,
        queries: &[PatternQuery],
        session: &StreamingSession,
        options: &PipelineOptions,
    ) -> QueryOutcome {
        let config = DiMatchingConfig {
            fixed_geometry: Some(session.params()),
            ..DiMatchingConfig::default()
        };
        let options = PipelineOptions {
            grouping: SectionGrouping::Merged,
            ..*options
        };
        run_pipeline::<Wbf>(dataset, queries, &config, &options)
            .unwrap()
            .into_merged(None)
    }

    #[test]
    fn first_epoch_matches_the_batch_pipeline() {
        let dataset = Dataset::small(41);
        let query = probe_query(&dataset, 0);
        let options = PipelineOptions::default();
        let mut session = StreamingSession::new(
            std::slice::from_ref(&query),
            DiMatchingConfig::default(),
            options,
        )
        .unwrap();
        let epoch = session.run_epoch(&dataset).unwrap();
        assert_eq!(epoch.broadcast, EpochBroadcast::Full);
        assert_eq!(epoch.broadcast_bytes, epoch.rebuild_bytes);
        let reference = rebuild_outcome(&dataset, &[query], &session, &options);
        assert_eq!(epoch.outcome.ranked, reference.ranked);
        assert_eq!(
            epoch.outcome.cost.report_bytes, reference.cost.report_bytes,
            "identical filter state must produce identical reports"
        );
    }

    #[test]
    fn query_churn_converges_to_the_rebuilt_pipeline() {
        // Insert a query, run, insert another, remove the first: the final
        // epoch must answer exactly like a from-scratch run over the
        // surviving set, and its broadcast must be a delta.
        let dataset = Dataset::small(42);
        let q0 = probe_query(&dataset, 0);
        let q1 = probe_query(&dataset, 5);
        let config = DiMatchingConfig {
            // Headroom: geometry outlives the initial single-query set.
            fixed_geometry: Some(FilterParams::new(1 << 14, 5).unwrap()),
            ..DiMatchingConfig::default()
        };
        let options = PipelineOptions::default();
        let mut session =
            StreamingSession::new(std::slice::from_ref(&q0), config, options).unwrap();
        let first = session.run_epoch(&dataset).unwrap();
        let id0 = session.live_queries()[0];
        session.insert_query(&q1).unwrap();
        session.remove_query(id0).unwrap();
        let second = session.run_epoch(&dataset).unwrap();
        assert!(matches!(second.broadcast, EpochBroadcast::Delta { entries } if entries > 0));
        assert!(
            second.broadcast_bytes != first.broadcast_bytes,
            "delta and full broadcasts must differ"
        );
        let reference = rebuild_outcome(&dataset, &[q1], &session, &options);
        assert_eq!(second.outcome.ranked, reference.ranked);
    }

    #[test]
    fn all_four_modes_agree_on_streaming_epochs() {
        let day0 = Dataset::small(43);
        let day1 = Dataset::small(44);
        let q0 = probe_query(&day0, 0);
        let q1 = probe_query(&day0, 7);
        let run = |mode: ExecutionMode| {
            let options = PipelineOptions {
                mode,
                shards: crate::basestation::Shards::new(2),
                latency: LatencyModel {
                    base_ticks: 40,
                    ticks_per_byte: 1,
                    ticks_per_row: 2,
                    jitter_ticks: 5,
                    seed: 3,
                },
                ..PipelineOptions::default()
            };
            let epochs = vec![
                (&day0, StreamingUpdate::none()),
                (
                    &day1,
                    StreamingUpdate {
                        insert: vec![q1.clone()],
                        remove: vec![],
                    },
                ),
            ];
            run_streaming(
                std::slice::from_ref(&q0),
                epochs,
                DiMatchingConfig::default(),
                options,
            )
            .unwrap()
        };
        let reference = run(ExecutionMode::Sequential);
        for mode in [
            ExecutionMode::Threaded,
            ExecutionMode::ThreadPool { workers: 3 },
            ExecutionMode::Async { workers: 3 },
        ] {
            let outcomes = run(mode);
            assert_eq!(outcomes.len(), reference.len());
            for (a, b) in reference.iter().zip(&outcomes) {
                assert_eq!(a.outcome.ranked, b.outcome.ranked, "{mode:?} diverged");
                assert_eq!(
                    a.outcome.cost,
                    b.outcome.cost.mode_invariant(),
                    "{mode:?} moved different bytes"
                );
                assert_eq!(a.broadcast, b.broadcast);
                assert_eq!(a.broadcast_bytes, b.broadcast_bytes);
            }
        }
    }

    #[test]
    fn async_epochs_accumulate_virtual_time() {
        let day0 = Dataset::small(45);
        let day1 = Dataset::small(46);
        let query = probe_query(&day0, 0);
        let options = PipelineOptions {
            mode: ExecutionMode::Async { workers: 2 },
            latency: LatencyModel::default(),
            ..PipelineOptions::default()
        };
        let mut session = StreamingSession::new(
            std::slice::from_ref(&query),
            DiMatchingConfig::default(),
            options,
        )
        .unwrap();
        let first = session.run_epoch(&day0).unwrap();
        let base_after_first = session.clock_base();
        assert!(base_after_first > 0, "async epochs model time");
        let second = session.run_epoch(&day1).unwrap();
        let first_latency = first.latency.as_ref().expect("async models time");
        let second_latency = second.latency.as_ref().expect("async models time");
        assert_eq!(
            first_latency.makespan_ticks,
            first.outcome.cost.makespan_ticks
        );
        assert!(
            second_latency.makespan_ticks > first_latency.makespan_ticks,
            "epoch 1 starts where epoch 0 ended"
        );
        for station in &second_latency.stations {
            assert!(
                station.report_sent >= base_after_first,
                "epoch 1 stamps start from epoch 0's makespan"
            );
        }
        assert!(second.outcome.cost.makespan_ticks >= base_after_first);
    }

    #[test]
    fn pure_cdr_churn_costs_a_near_empty_delta() {
        let day0 = Dataset::small(47);
        let day1 = Dataset::small(48);
        let query = probe_query(&day0, 0);
        let mut session = StreamingSession::new(
            std::slice::from_ref(&query),
            DiMatchingConfig::default(),
            PipelineOptions::default(),
        )
        .unwrap();
        let full = session.run_epoch(&day0).unwrap();
        let delta = session.run_epoch(&day1).unwrap();
        assert_eq!(delta.broadcast, EpochBroadcast::Delta { entries: 0 });
        assert!(
            delta.broadcast_bytes * 10 < full.broadcast_bytes,
            "an empty delta must be far cheaper than the full filter: {} vs {}",
            delta.broadcast_bytes,
            full.broadcast_bytes
        );
        assert!(delta.rebuild_bytes >= full.broadcast_bytes);
    }

    #[test]
    fn station_count_changes_are_rejected_and_the_session_recovers() {
        let day0 = Dataset::small(49);
        let other = Dataset::city_slice(60, 3, 1).unwrap();
        let query = probe_query(&day0, 0);
        let mut session = StreamingSession::new(
            std::slice::from_ref(&query),
            DiMatchingConfig::default(),
            PipelineOptions::default(),
        )
        .unwrap();
        session.run_epoch(&day0).unwrap();
        assert!(session.run_epoch(&other).is_err());
        // A failed epoch must not wedge the session: the next epoch over a
        // valid dataset resyncs stations with a full broadcast (the
        // failure may have left them mid-protocol) and answers normally.
        let recovered = session.run_epoch(&day0).unwrap();
        assert_eq!(recovered.broadcast, EpochBroadcast::Full);
        assert!(recovered.outcome.ranked.contains(&day0.users()[0].id));
        // And the session continues on the delta path afterwards.
        let next = session.run_epoch(&day0).unwrap();
        assert_eq!(next.broadcast, EpochBroadcast::Delta { entries: 0 });
    }

    #[test]
    fn unknown_query_removal_is_rejected() {
        let day0 = Dataset::small(50);
        let query = probe_query(&day0, 0);
        let mut session = StreamingSession::new(
            std::slice::from_ref(&query),
            DiMatchingConfig::default(),
            PipelineOptions::default(),
        )
        .unwrap();
        let err = session.remove_query(StreamQueryId(99)).unwrap_err();
        assert!(matches!(err, ProtocolError::UnknownStreamQuery { id: 99 }));
        // Removing twice fails the second time.
        let id = session.live_queries()[0];
        session.remove_query(id).unwrap();
        assert!(session.remove_query(id).is_err());
    }

    #[test]
    fn station_state_rejects_protocol_violations() {
        let mut state = StationState::default();
        // A delta before any full broadcast is a protocol violation.
        let delta = StationUpdate::Delta {
            epoch: 0,
            query_totals: vec![],
            delta: FilterDelta::default(),
        };
        assert!(state.apply(delta.clone(), 0).is_err());
        // So is an epoch mismatch.
        assert!(state.apply(delta, 3).is_err());
        assert!(state.view().is_err());
    }
}
