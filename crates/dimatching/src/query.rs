//! Pattern queries: the inputs a service provider submits.
//!
//! A query is the decomposition of one target person's communication — a set
//! of local patterns whose element-wise sum is the global pattern of
//! interest. The data center receives one or more such queries and answers
//! with the top-K users whose (never materialized) global patterns match.

use dipm_mobilenet::StationId;
use dipm_timeseries::Pattern;

use crate::error::{ProtocolError, Result};

/// One pattern query: a global pattern given as its local fragments.
///
/// # Examples
///
/// ```
/// use dipm_protocol::PatternQuery;
/// use dipm_timeseries::Pattern;
///
/// # fn main() -> Result<(), dipm_protocol::ProtocolError> {
/// let query = PatternQuery::from_locals(vec![
///     Pattern::from([1u64, 2, 3]),
///     Pattern::from([2u64, 2, 2]),
/// ])?;
/// assert_eq!(query.global(), &Pattern::from([3u64, 4, 5]));
/// assert_eq!(query.locals().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternQuery {
    locals: Vec<Pattern>,
    global: Pattern,
}

impl PatternQuery {
    /// Builds a query from local fragments; their element-wise sum is the
    /// global pattern.
    ///
    /// # Errors
    ///
    /// * [`ProtocolError::EmptyQuery`] — no fragments given.
    /// * [`ProtocolError::TimeSeries`] — fragments of unequal length or an
    ///   overflowing sum.
    /// * [`ProtocolError::ZeroQueryVolume`] — the global pattern sums to 0,
    ///   leaving no volume to assign weights from.
    pub fn from_locals(locals: Vec<Pattern>) -> Result<PatternQuery> {
        if locals.is_empty() {
            return Err(ProtocolError::EmptyQuery);
        }
        let global = Pattern::sum(locals.iter())?;
        match global.total() {
            None => {
                return Err(ProtocolError::TimeSeries(
                    dipm_timeseries::TimeSeriesError::Overflow,
                ))
            }
            Some(0) => return Err(ProtocolError::ZeroQueryVolume),
            Some(_) => {}
        }
        Ok(PatternQuery { locals, global })
    }

    /// Builds a query directly from a known global pattern with no
    /// decomposition (a single-fragment query).
    ///
    /// # Errors
    ///
    /// Same as [`PatternQuery::from_locals`].
    pub fn from_global(global: Pattern) -> Result<PatternQuery> {
        PatternQuery::from_locals(vec![global])
    }

    /// Builds a query from a dataset user's `(station, fragment)` pairs —
    /// the "given a preferred customer's pattern" scenario of the paper's
    /// introduction.
    ///
    /// # Errors
    ///
    /// Same as [`PatternQuery::from_locals`].
    pub fn from_fragments(fragments: &[(StationId, Pattern)]) -> Result<PatternQuery> {
        PatternQuery::from_locals(fragments.iter().map(|(_, p)| p.clone()).collect())
    }

    /// The local fragments.
    pub fn locals(&self) -> &[Pattern] {
        &self.locals
    }

    /// The global pattern (element-wise sum of the fragments).
    pub fn global(&self) -> &Pattern {
        &self.global
    }

    /// The number of time intervals each pattern spans.
    pub fn intervals(&self) -> usize {
        self.global.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_locals_sums_global() {
        let q = PatternQuery::from_locals(vec![
            Pattern::from([1u64, 1, 1]),
            Pattern::from([2u64, 2, 0]),
            Pattern::from([0u64, 1, 4]),
        ])
        .unwrap();
        assert_eq!(q.global(), &Pattern::from([3u64, 4, 5]));
        assert_eq!(q.intervals(), 3);
    }

    #[test]
    fn empty_query_rejected() {
        assert_eq!(
            PatternQuery::from_locals(vec![]).unwrap_err(),
            ProtocolError::EmptyQuery
        );
    }

    #[test]
    fn zero_volume_rejected() {
        assert_eq!(
            PatternQuery::from_locals(vec![Pattern::zeros(4)]).unwrap_err(),
            ProtocolError::ZeroQueryVolume
        );
    }

    #[test]
    fn mismatched_fragments_rejected() {
        let err = PatternQuery::from_locals(vec![Pattern::from([1u64, 2]), Pattern::from([1u64])])
            .unwrap_err();
        assert!(matches!(err, ProtocolError::TimeSeries(_)));
    }

    #[test]
    fn from_global_is_single_fragment() {
        let q = PatternQuery::from_global(Pattern::from([5u64, 5])).unwrap();
        assert_eq!(q.locals().len(), 1);
    }

    #[test]
    fn from_fragments_strips_stations() {
        let frags = vec![
            (StationId(3), Pattern::from([1u64, 0])),
            (StationId(9), Pattern::from([0u64, 2])),
        ];
        let q = PatternQuery::from_fragments(&frags).unwrap();
        assert_eq!(q.global(), &Pattern::from([1u64, 2]));
    }
}
