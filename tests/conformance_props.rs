//! Facade-level property tests: the weight algebra the protocol's
//! correctness rests on, and every wire format's round-trip — exercised
//! through the `dipm` re-exports exactly as a downstream user would.

use bytes::Bytes;
use dipm::core::{encode, sum_weights, BloomFilter, FilterParams, Weight, WeightSet};
use dipm::mobilenet::UserId;
use dipm::prelude::*;
use dipm::protocol::wire;
use dipm::timeseries::Pattern;
use proptest::collection::vec;
use proptest::prelude::*;

fn arb_weight() -> impl Strategy<Value = Weight> {
    (1u64..=1_000_000, 1u64..=1_000_000)
        .prop_map(|(a, b)| Weight::new(a.min(b), a.max(b)).expect("non-zero denominator"))
}

proptest! {
    // ---------- Weight algebra ----------

    #[test]
    fn weight_addition_commutes_and_associates(
        a in arb_weight(),
        b in arb_weight(),
        c in arb_weight(),
    ) {
        prop_assert_eq!(a.checked_add(b), b.checked_add(a));
        let left = a.checked_add(b).and_then(|ab| ab.checked_add(c));
        let right = b.checked_add(c).and_then(|bc| a.checked_add(bc));
        if let (Some(l), Some(r)) = (left, right) {
            prop_assert_eq!(l, r);
        }
    }

    #[test]
    fn true_decomposition_sums_to_exactly_one(parts in vec(1u64..10_000, 1..16)) {
        // Eq. 1's share weights: any decomposition of a positive total sums
        // to exactly 1 — the anchor of Algorithm 3's acceptance test.
        let total: u64 = parts.iter().sum();
        let weights = parts.iter().map(|&p| Weight::ratio(p, total).unwrap());
        prop_assert!(sum_weights(weights).unwrap().is_one());
    }

    #[test]
    fn overfull_decomposition_is_deleted(
        parts in vec(1u64..10_000, 1..16),
        extra in arb_weight(),
    ) {
        // The weight-sum>1 deletion path: adding any extra report to an
        // exact decomposition pushes the sum strictly above 1, so
        // Algorithm 3 must drop the user.
        let total: u64 = parts.iter().sum();
        let user = UserId(7);
        let mut reports: Vec<(UserId, Weight)> = parts
            .iter()
            .map(|&p| (user, Weight::ratio(p, total).unwrap()))
            .collect();
        reports.push((user, extra));
        let ranked = aggregate_and_rank(reports, None);
        prop_assert!(
            ranked.is_empty(),
            "weight sum above 1 must delete the user, got {:?}",
            ranked
        );
    }

    // ---------- WeightSet algebra ----------

    #[test]
    fn weight_set_intersection_is_exact(
        xs in vec(arb_weight(), 0..24),
        ys in vec(arb_weight(), 0..24),
    ) {
        let a: WeightSet = xs.iter().copied().collect();
        let b: WeightSet = ys.iter().copied().collect();
        let i = a.intersection(&b);
        prop_assert_eq!(&i, &b.intersection(&a));
        for w in i.iter() {
            prop_assert!(a.contains(w) && b.contains(w));
        }
        for w in a.iter() {
            prop_assert_eq!(b.contains(w), i.contains(w));
        }
    }

    #[test]
    fn weight_set_insert_deduplicates(ws in vec(arb_weight(), 0..24)) {
        let mut set = WeightSet::new();
        for &w in &ws {
            set.insert(w);
        }
        let before = set.len();
        for &w in &ws {
            prop_assert!(!set.insert(w), "re-inserting {} must be a no-op", w);
        }
        prop_assert_eq!(set.len(), before);
    }

    // ---------- Filter encoding round-trips ----------

    #[test]
    fn bloom_filter_roundtrips_on_the_wire(
        keys in vec(any::<u64>(), 0..200),
        seed in any::<u64>(),
    ) {
        let params = FilterParams::new(2048, 4).unwrap();
        let mut bf = BloomFilter::new(params, seed);
        for &k in &keys {
            bf.insert(k);
        }
        let encoded = encode::encode_bloom(&bf);
        prop_assert_eq!(encoded.len(), encode::encoded_bloom_len(&bf));
        prop_assert_eq!(encode::decode_bloom(encoded).unwrap(), bf);
    }

    #[test]
    fn weighted_filter_roundtrips_on_the_wire(
        entries in vec((any::<u64>(), arb_weight()), 0..100),
        seed in any::<u64>(),
    ) {
        let params = FilterParams::new(4096, 3).unwrap();
        let mut wbf = WeightedBloomFilter::new(params, seed);
        for (k, w) in &entries {
            wbf.insert(*k, *w);
        }
        let encoded = encode::encode_wbf(&wbf).unwrap();
        prop_assert_eq!(encoded.len(), encode::encoded_wbf_len(&wbf));
        prop_assert_eq!(encode::decode_wbf(encoded).unwrap(), wbf);
    }

    // ---------- Protocol message round-trips ----------

    #[test]
    fn weight_reports_roundtrip(
        raw in vec((any::<u64>(), 1u64..1000, 1u64..1000), 0..50),
    ) {
        let reports: Vec<(UserId, Weight)> = raw
            .iter()
            .map(|&(id, a, b)| (UserId(id), Weight::new(a, b).unwrap()))
            .collect();
        let decoded =
            wire::decode_weight_reports(wire::encode_weight_reports(&reports).unwrap()).unwrap();
        prop_assert_eq!(decoded, reports);
    }

    #[test]
    fn station_data_roundtrips(
        raw in vec((any::<u64>(), vec(any::<u64>(), 0..12)), 0..20),
    ) {
        let entries: Vec<(UserId, Pattern)> = raw
            .into_iter()
            .map(|(id, vs)| (UserId(id), Pattern::new(vs)))
            .collect();
        let encoded = wire::encode_station_data(entries.iter().map(|(u, p)| (*u, p))).unwrap();
        prop_assert_eq!(wire::decode_station_data(encoded).unwrap(), entries);
    }

    #[test]
    fn filter_broadcast_roundtrips(
        totals in vec(any::<u64>(), 0..8),
        payload in vec(any::<u8>(), 0..64),
    ) {
        let filter = Bytes::from(payload);
        let framed = wire::encode_filter_broadcast(&totals, filter.clone()).unwrap();
        let (decoded_totals, rest) = wire::decode_filter_broadcast(framed).unwrap();
        prop_assert_eq!(decoded_totals, totals);
        prop_assert_eq!(rest, filter);
    }

    #[test]
    fn corrupt_broadcasts_never_panic(raw in vec(any::<u8>(), 0..300)) {
        let bytes = Bytes::from(raw);
        let _ = wire::decode_weight_reports(bytes.clone());
        let _ = wire::decode_id_reports(bytes.clone());
        let _ = wire::decode_station_data(bytes.clone());
        let _ = wire::decode_filter_broadcast(bytes.clone());
        let _ = encode::decode_bloom(bytes.clone());
        let _ = encode::decode_wbf(bytes);
    }
}
