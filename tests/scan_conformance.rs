//! Scan-core conformance: the scratch-based, allocation-free shard scan
//! must be **bit-for-bit** identical to a straightforward allocating
//! reference scan on every seeded conformance dataset.
//!
//! The reference re-derives each row independently through the public
//! two-step pipeline (`AccumulatedPattern` → `SampledPattern`), probes with
//! the owned `query_sequence`, and applies the documented weight-selection
//! rule. Comparing the *encoded report frames* pins report content **and**
//! order down to the wire bytes, so neither the reused key buffer, the
//! probe scratch, nor the word-level membership fast path can shift a
//! single report.

// Only the dataset/query helpers are used here; the oracle assertions
// belong to the end-to-end conformance binaries.
#[allow(dead_code)]
mod conformance;

use dipm::core::{Weight, WeightSet};
use dipm::mobilenet::UserId;
use dipm::prelude::*;
use dipm::protocol::wire;
use dipm::protocol::{build_wbf, scan_shard_wbf, BaseStation, BuiltFilter, Shards, WbfScanSection};
use dipm::timeseries::{AccumulatedPattern, Pattern, SampledPattern};

/// The documented plausibility rule of the station's weight selection: the
/// smallest surviving non-zero weight whose implied combination volume lies
/// within `slack` of the observed volume (every weight when no totals were
/// broadcast).
fn reference_select(
    set: &WeightSet,
    query_totals: &[u64],
    local_total: u64,
    slack: u64,
) -> Option<Weight> {
    set.iter().find(|&w| {
        if w.is_zero() {
            return false;
        }
        if query_totals.is_empty() {
            return true;
        }
        query_totals.iter().any(|&t| {
            let implied = w.numerator() as u128 * t as u128;
            let observed = local_total as u128 * w.denominator() as u128;
            implied.abs_diff(observed) <= slack as u128 * w.denominator() as u128
        })
    })
}

/// Allocation-heavy reference scan: fresh buffers for every row, owned
/// query results, same `(row, section)` visit order.
fn reference_scan(
    sections: &[WbfScanSection<'_>],
    shard: &[(UserId, &Pattern)],
    config: &DiMatchingConfig,
) -> Vec<(u32, UserId, Weight)> {
    let mut reports = Vec::new();
    for &(user, pattern) in shard {
        let acc = AccumulatedPattern::from_pattern(pattern).expect("pattern accumulates");
        let sampled = SampledPattern::from_accumulated(&acc, config.samples).expect("samples");
        let keys: Vec<u64> = sampled
            .points()
            .iter()
            .enumerate()
            .map(|(i, p)| config.hash_scheme.key(i, p.value))
            .collect();
        let local_total = sampled.max_value();
        let slack = config.eps.saturating_mul(pattern.len() as u64);
        for &(query, filter, query_totals) in sections {
            if let Some(set) = filter.query_sequence(keys.iter().copied()) {
                if let Some(weight) = reference_select(&set, query_totals, local_total, slack) {
                    reports.push((query, user, weight));
                }
            }
        }
    }
    reports
}

#[test]
fn scan_shard_wbf_is_bit_for_bit_identical_to_reference() {
    let config = DiMatchingConfig::default();
    for seed in conformance::SEEDS {
        let dataset = conformance::dataset(seed);
        let builds: Vec<BuiltFilter> = conformance::PROBES
            .iter()
            .map(|&probe| {
                let query = conformance::probe_query(&dataset, probe);
                build_wbf(std::slice::from_ref(&query), &config).expect("filter builds")
            })
            .collect();
        let sections: Vec<WbfScanSection<'_>> = builds
            .iter()
            .enumerate()
            .map(|(i, b)| (i as u32, &b.filter, b.query_totals.as_slice()))
            .collect();
        let mut hits = 0usize;
        for &station in dataset.stations() {
            let locals = dataset.station_locals(station).expect("station has users");
            let base = BaseStation::from_locals(station, locals, Shards::new(2));
            for shard_index in 0..base.shard_count() {
                let shard = base.shard(shard_index);
                let fast = scan_shard_wbf(&sections, shard, &config, None).expect("scan runs");
                let reference = reference_scan(&sections, shard, &config);
                assert_eq!(
                    fast, reference,
                    "seed {seed}, station {station:?}, shard {shard_index}"
                );
                let fast_bytes = wire::encode_tagged_weight_reports(&fast).expect("encodes");
                let reference_bytes =
                    wire::encode_tagged_weight_reports(&reference).expect("encodes");
                assert_eq!(
                    fast_bytes, reference_bytes,
                    "wire bytes must match at seed {seed}"
                );
                hits += fast.len();
            }
        }
        assert!(hits > 0, "seed {seed} produced no reports — vacuous pass");
    }
}

#[test]
fn zero_copy_wire_views_scan_bit_for_bit_identical_to_owned_sections() {
    // A station scanning straight out of received broadcast bytes (the
    // zero-copy WbfFrameView path) must produce byte-identical report
    // frames to a scan over the center's owned filters, on every
    // conformance seed.
    let config = DiMatchingConfig::default();
    for seed in conformance::SEEDS {
        let dataset = conformance::dataset(seed);
        let builds: Vec<BuiltFilter> = conformance::PROBES
            .iter()
            .map(|&probe| {
                let query = conformance::probe_query(&dataset, probe);
                build_wbf(std::slice::from_ref(&query), &config).expect("filter builds")
            })
            .collect();
        let owned_sections: Vec<WbfScanSection<'_>> = builds
            .iter()
            .enumerate()
            .map(|(i, b)| (i as u32, &b.filter, b.query_totals.as_slice()))
            .collect();
        // Re-open every section exactly as a station does: encode the
        // broadcast frame, then view it in place.
        let views: Vec<wire::WbfSectionView> = builds
            .iter()
            .map(|b| {
                let frame = wire::encode_filter_broadcast(
                    &b.query_totals,
                    dipm::core::encode::encode_wbf(&b.filter).expect("filter encodes"),
                )
                .expect("broadcast frames");
                wire::view_filter_broadcast(frame).expect("broadcast views")
            })
            .collect();
        let view_sections: Vec<WbfScanSection<'_, dipm::core::WbfFrameView>> = views
            .iter()
            .enumerate()
            .map(|(i, v)| (i as u32, &v.filter, v.query_totals.as_slice()))
            .collect();
        let mut hits = 0usize;
        for &station in dataset.stations() {
            let locals = dataset.station_locals(station).expect("station has users");
            let base = BaseStation::from_locals(station, locals, Shards::new(2));
            for shard_index in 0..base.shard_count() {
                let shard = base.shard(shard_index);
                let owned =
                    scan_shard_wbf(&owned_sections, shard, &config, None).expect("owned scan");
                let viewed =
                    scan_shard_wbf(&view_sections, shard, &config, None).expect("view scan");
                assert_eq!(
                    owned, viewed,
                    "seed {seed}, station {station:?}, shard {shard_index}"
                );
                let owned_bytes = wire::encode_tagged_weight_reports(&owned).expect("encodes");
                let viewed_bytes = wire::encode_tagged_weight_reports(&viewed).expect("encodes");
                assert_eq!(
                    owned_bytes, viewed_bytes,
                    "wire bytes must match at seed {seed}"
                );
                hits += owned.len();
            }
        }
        assert!(hits > 0, "seed {seed} produced no reports — vacuous pass");
    }
}
