//! Property tests for the dynamic-pruning scan ladder: on *arbitrary*
//! workloads (random fragments, random stores, duplicate all-ties rows,
//! any k including 0 and beyond the candidate population), every
//! `ScanAlgorithm` rung must return exactly what `Exhaustive` returns —
//! for the full shard scan and for the top-k kernel — and `Exhaustive`
//! must never touch the pruning meters.

use dipm::distsim::CostMeter;
use dipm::mobilenet::UserId;
use dipm::prelude::*;
use dipm::protocol::{scan_shard_wbf, scan_shard_wbf_topk, BuiltFilter, WbfScanSection};
use dipm::timeseries::Pattern;
use proptest::collection::vec;
use proptest::prelude::*;

/// One generated workload: a query decomposition, a store of candidate
/// rows, and a top-k cutoff.
#[derive(Debug, Clone)]
struct Workload {
    fragments: Vec<Vec<u64>>,
    noise: Vec<Vec<u64>>,
    /// How many extra rows replay the query's own global pattern — exact
    /// duplicates, so their reports all carry the same weight (the
    /// all-ties case the heap's user-id tie-break must get right).
    ties: usize,
    k: usize,
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    // Rows are drawn at the maximum interval count and truncated to a
    // shared `len` (the vendored proptest has no flat-map to make row
    // width depend on another draw). `k_sel` folds the edge cutoffs into
    // one axis: 0 stays 0, 9 maps far beyond any candidate population.
    (
        2usize..=7,
        vec(vec(0u64..30, 7..=7), 1..4),
        vec(vec(0u64..60, 7..=7), 0..24),
        0usize..6,
        0usize..10,
    )
        .prop_map(|(len, mut fragments, mut noise, ties, k_sel)| {
            for row in fragments.iter_mut().chain(noise.iter_mut()) {
                row.truncate(len);
            }
            // A query needs positive global volume.
            fragments[0][0] += 1;
            let k = match k_sel {
                0 => 0,
                9 => 10_000,
                v => v,
            };
            Workload {
                fragments,
                noise,
                ties,
                k,
            }
        })
}

/// Builds the single-section filter and the row store for one workload.
/// Rows ascend by unique user id, exactly like a real [`BaseStation`]
/// shard. The store mixes the query's own fragments and global (guaranteed
/// matches), the tie rows, and the noise.
fn build(workload: &Workload) -> (BuiltFilter, Vec<(UserId, Pattern)>, DiMatchingConfig) {
    let config = DiMatchingConfig::default();
    let fragments: Vec<Pattern> = workload
        .fragments
        .iter()
        .map(|v| Pattern::new(v.clone()))
        .collect();
    let query = PatternQuery::from_locals(fragments.clone()).expect("positive-volume query");
    let global = query.global().clone();
    let built = build_wbf(std::slice::from_ref(&query), &config).expect("filter builds");
    let mut rows: Vec<Pattern> = fragments;
    rows.push(global.clone());
    rows.extend(std::iter::repeat(global).take(workload.ties));
    rows.extend(workload.noise.iter().map(|v| Pattern::new(v.clone())));
    let store = rows
        .into_iter()
        .enumerate()
        .map(|(i, p)| (UserId(i as u64), p))
        .collect();
    (built, store, config)
}

fn with_algorithm(config: &DiMatchingConfig, algorithm: ScanAlgorithm) -> DiMatchingConfig {
    DiMatchingConfig {
        scan_algorithm: algorithm,
        ..config.clone()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn full_scan_ladder_is_result_exact_on_arbitrary_stores(workload in arb_workload()) {
        let (built, store, config) = build(&workload);
        let sections: Vec<WbfScanSection<'_>> =
            vec![(0, &built.filter, built.query_totals.as_slice())];
        let shard: Vec<(UserId, &Pattern)> = store.iter().map(|&(u, ref p)| (u, p)).collect();
        let reference = scan_shard_wbf(&sections, &shard, &config, None).expect("scan runs");
        // The store contains the query's own rows, so the pass cannot be
        // vacuously empty.
        prop_assert!(!reference.is_empty());
        for algorithm in ScanAlgorithm::ALL {
            let pruned =
                scan_shard_wbf(&sections, &shard, &with_algorithm(&config, algorithm), None)
                    .expect("pruned scan runs");
            prop_assert_eq!(&pruned, &reference, "{:?} diverged", algorithm);
        }
    }

    #[test]
    fn topk_ladder_matches_exhaustive_for_arbitrary_k(workload in arb_workload()) {
        let (built, store, config) = build(&workload);
        let sections: Vec<WbfScanSection<'_>> =
            vec![(0, &built.filter, built.query_totals.as_slice())];
        let shard: Vec<(UserId, &Pattern)> = store.iter().map(|&(u, ref p)| (u, p)).collect();
        let k = workload.k;
        let reference =
            scan_shard_wbf_topk(&sections, &shard, &config, k, None).expect("reference runs");
        prop_assert!(reference.len() <= k, "top-k kernel kept more than k");
        for algorithm in ScanAlgorithm::ALL {
            let pruned = scan_shard_wbf_topk(
                &sections,
                &shard,
                &with_algorithm(&config, algorithm),
                k,
                None,
            )
            .expect("pruned scan runs");
            // Result set AND rank order: the report vectors are compared
            // entry for entry.
            prop_assert_eq!(&pruned, &reference, "{:?} diverged at k = {}", algorithm, k);
        }
        // The kept entries are exactly the best-ranked prefix of the full
        // scan's reports under the (weight desc, user asc) rank order.
        let full = scan_shard_wbf(&sections, &shard, &config, None).expect("full scan runs");
        let mut ranked = full;
        ranked.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| a.1.cmp(&b.1)));
        ranked.truncate(k);
        prop_assert_eq!(reference, ranked, "top-k is not the best-ranked prefix");
    }

    #[test]
    fn exhaustive_never_touches_the_pruning_meters(workload in arb_workload()) {
        let (built, store, config) = build(&workload);
        let sections: Vec<WbfScanSection<'_>> =
            vec![(0, &built.filter, built.query_totals.as_slice())];
        let shard: Vec<(UserId, &Pattern)> = store.iter().map(|&(u, ref p)| (u, p)).collect();
        let meter = CostMeter::new();
        scan_shard_wbf(&sections, &shard, &config, Some(&meter)).expect("scan runs");
        scan_shard_wbf_topk(&sections, &shard, &config, workload.k, Some(&meter))
            .expect("topk scan runs");
        let report = meter.report();
        prop_assert_eq!(report.rows_pruned, 0, "exhaustive pruned rows");
        prop_assert_eq!(report.blocks_skipped, 0, "exhaustive skipped blocks");
    }
}
