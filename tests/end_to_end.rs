//! Cross-crate integration tests: the full DI-matching pipeline against the
//! naive gold standard and the Bloom baseline.

use std::collections::BTreeSet;

use dipm::mobilenet::ground_truth;
use dipm::prelude::*;

fn probe_query(dataset: &Dataset, index: usize) -> PatternQuery {
    let user = dataset.users()[index];
    PatternQuery::from_fragments(dataset.fragments(user.id).unwrap()).unwrap()
}

#[test]
fn wbf_never_misses_what_naive_finds() {
    // The accumulated tolerance mode guarantees no false negatives, so every
    // user the exact (naive) method retrieves must also be reported by WBF
    // (WBF may add false positives, never lose true ones — except through
    // the weight-sum>1 deletion, which the generator's clean splits avoid).
    let dataset = Dataset::city_slice(300, 10, 5).unwrap();
    let config = DiMatchingConfig::default();
    for probe_index in [0, 7, 20] {
        let query = probe_query(&dataset, probe_index);
        let naive = run_naive(
            &dataset,
            &[query.clone()],
            config.eps,
            ExecutionMode::Sequential,
            None,
        )
        .unwrap();
        let wbf = run_wbf(&dataset, &[query], &config, ExecutionMode::Sequential, None).unwrap();
        let wbf_set: BTreeSet<UserId> = wbf.ranked.iter().copied().collect();
        for user in &naive.ranked {
            assert!(
                wbf_set.contains(user),
                "probe {probe_index}: naive found {user} but WBF missed it"
            );
        }
    }
}

#[test]
fn wbf_precision_is_at_least_bloom_precision() {
    // The weight-consistency check only removes candidates, so WBF's
    // precision dominates the unweighted baseline's.
    let dataset = Dataset::city_slice(400, 12, 9).unwrap();
    let config = DiMatchingConfig::default();
    let mut wbf_total = 0.0;
    let mut bf_total = 0.0;
    for probe_index in [0, 11, 33] {
        let query = probe_query(&dataset, probe_index);
        let relevant = ground_truth::eps_similar_users(&dataset, query.global(), config.eps);
        let wbf =
            run_wbf(&dataset, &[query.clone()], &config, ExecutionMode::Sequential, None).unwrap();
        let bf = run_bloom(&dataset, &[query], &config, ExecutionMode::Sequential, None).unwrap();
        wbf_total += evaluate(wbf.retrieved(), &relevant).precision;
        bf_total += evaluate(bf.retrieved(), &relevant).precision;
    }
    assert!(
        wbf_total >= bf_total - 1e-9,
        "wbf precision {wbf_total} below bloom {bf_total}"
    );
}

#[test]
fn communication_ordering_matches_figure_4c() {
    // At city scale the naive method ships the corpus; both filter methods
    // ship a filter plus tiny reports.
    let dataset = Dataset::city_slice(2000, 16, 3).unwrap();
    let config = DiMatchingConfig::default();
    let query = probe_query(&dataset, 0);
    let naive = run_naive(
        &dataset,
        &[query.clone()],
        config.eps,
        ExecutionMode::Sequential,
        None,
    )
    .unwrap();
    let wbf =
        run_wbf(&dataset, &[query.clone()], &config, ExecutionMode::Sequential, None).unwrap();
    let bf = run_bloom(&dataset, &[query], &config, ExecutionMode::Sequential, None).unwrap();
    assert!(
        wbf.cost.total_bytes() < naive.cost.total_bytes(),
        "wbf {} >= naive {}",
        wbf.cost.total_bytes(),
        naive.cost.total_bytes()
    );
    assert!(
        bf.cost.total_bytes() < naive.cost.total_bytes(),
        "bf {} >= naive {}",
        bf.cost.total_bytes(),
        naive.cost.total_bytes()
    );
}

#[test]
fn storage_ordering_matches_figure_4d() {
    let dataset = Dataset::city_slice(2000, 16, 4).unwrap();
    let config = DiMatchingConfig::default();
    let query = probe_query(&dataset, 0);
    let naive = run_naive(
        &dataset,
        &[query.clone()],
        config.eps,
        ExecutionMode::Sequential,
        None,
    )
    .unwrap();
    let wbf =
        run_wbf(&dataset, &[query.clone()], &config, ExecutionMode::Sequential, None).unwrap();
    let bf = run_bloom(&dataset, &[query], &config, ExecutionMode::Sequential, None).unwrap();
    // BF ≤ WBF ≪ naive: the weight table is WBF's storage premium.
    assert!(bf.cost.storage_bytes <= wbf.cost.storage_bytes);
    assert!(wbf.cost.storage_bytes < naive.cost.storage_bytes);
}

#[test]
fn threaded_and_sequential_agree_across_methods() {
    let dataset = Dataset::city_slice(250, 8, 13).unwrap();
    let config = DiMatchingConfig::default();
    let query = probe_query(&dataset, 5);

    let wbf_seq =
        run_wbf(&dataset, &[query.clone()], &config, ExecutionMode::Sequential, None).unwrap();
    let wbf_thr =
        run_wbf(&dataset, &[query.clone()], &config, ExecutionMode::Threaded, None).unwrap();
    assert_eq!(wbf_seq.ranked, wbf_thr.ranked);

    let bf_seq =
        run_bloom(&dataset, &[query.clone()], &config, ExecutionMode::Sequential, None).unwrap();
    let bf_thr =
        run_bloom(&dataset, &[query.clone()], &config, ExecutionMode::Threaded, None).unwrap();
    assert_eq!(bf_seq.ranked, bf_thr.ranked);

    let naive_seq = run_naive(
        &dataset,
        &[query.clone()],
        config.eps,
        ExecutionMode::Sequential,
        None,
    )
    .unwrap();
    let naive_thr =
        run_naive(&dataset, &[query], config.eps, ExecutionMode::Threaded, None).unwrap();
    assert_eq!(naive_seq.ranked, naive_thr.ranked);
}

#[test]
fn multi_pattern_queries_share_one_broadcast() {
    // Hashing more query patterns into the one filter must not multiply the
    // number of messages: still one broadcast per station + one report back.
    let dataset = Dataset::city_slice(300, 10, 8).unwrap();
    let config = DiMatchingConfig::default();
    let one = run_wbf(
        &dataset,
        &[probe_query(&dataset, 0)],
        &config,
        ExecutionMode::Sequential,
        None,
    )
    .unwrap();
    let five: Vec<PatternQuery> = (0..5).map(|i| probe_query(&dataset, i * 7)).collect();
    let many = run_wbf(&dataset, &five, &config, ExecutionMode::Sequential, None).unwrap();
    assert_eq!(one.cost.messages, many.cost.messages);
    // The five-pattern audience contains the one-pattern audience.
    let many_set: BTreeSet<UserId> = many.ranked.iter().copied().collect();
    for user in &one.ranked {
        assert!(many_set.contains(user));
    }
}

#[test]
fn position_tagged_ablation_is_no_less_precise() {
    let dataset = Dataset::city_slice(400, 12, 17).unwrap();
    let query = probe_query(&dataset, 3);
    let relevant = ground_truth::eps_similar_users(&dataset, query.global(), 2);

    let value_only = DiMatchingConfig::default();
    let mut tagged = DiMatchingConfig::default();
    tagged.hash_scheme = HashScheme::PositionTagged;

    // The paper's query is top-K; evaluate at K = |relevant| (R-precision).
    let k = Some(relevant.len());
    let a = run_wbf(&dataset, &[query.clone()], &value_only, ExecutionMode::Sequential, k)
        .unwrap();
    let b = run_wbf(&dataset, &[query], &tagged, ExecutionMode::Sequential, k).unwrap();
    let pa = evaluate(a.retrieved(), &relevant).precision;
    let pb = evaluate(b.retrieved(), &relevant).precision;
    assert!(pb >= pa - 1e-9, "tagged {pb} below value-only {pa}");
}

#[test]
fn survey_dataset_effectiveness_floor() {
    // Table II reports ≥ 0.97 precision and ≥ 0.99 recall on the 310-person
    // survey; require a conservative floor here so the test is robust to
    // seed choice (the bench harness reports the exact numbers).
    let dataset = Dataset::survey_310(1);
    let config = DiMatchingConfig::default();
    let mut min_precision: f64 = 1.0;
    let mut min_recall: f64 = 1.0;
    for category in Category::ALL {
        let probe = dataset
            .users()
            .iter()
            .find(|u| u.category == category)
            .unwrap();
        let query = PatternQuery::from_fragments(dataset.fragments(probe.id).unwrap()).unwrap();
        let relevant = ground_truth::eps_similar_users(&dataset, query.global(), config.eps);
        // Top-K query semantics: evaluate at K = |relevant| (R-precision).
        let outcome = run_wbf(
            &dataset,
            &[query.clone()],
            &config,
            ExecutionMode::Sequential,
            Some(relevant.len()),
        )
        .unwrap();
        let score = evaluate(outcome.retrieved(), &relevant);
        min_precision = min_precision.min(score.precision);
        min_recall = min_recall.min(score.recall);
    }
    assert!(min_precision > 0.9, "precision floor violated: {min_precision}");
    assert!(min_recall > 0.95, "recall floor violated: {min_recall}");
}
