//! Cross-crate conformance harness: the full DI-matching pipeline against
//! the naive gold standard and the Bloom baseline, swept over fixed dataset
//! seeds via the shared oracle in [`conformance`].

mod conformance;

use std::collections::BTreeSet;

use conformance::probe_query;
use dipm::core::{FilterParams, Weight, WeightedBloomFilter};
use dipm::mobilenet::ground_truth;
use dipm::prelude::*;

#[test]
fn conformance_invariants_hold_on_every_seed() {
    // One naive/Bloom/WBF triple per (seed, probe) pair, checked against
    // both ranking invariants (the assert messages name which one failed):
    //
    // 1. No false negatives — the accumulated tolerance mode guarantees
    //    every user the exact (naive) method retrieves is also reported by
    //    WBF (WBF may add false positives, never lose true ones — except
    //    through the weight-sum>1 deletion, which the generator's clean
    //    splits avoid).
    // 2. Precision dominance — the weight-consistency check only removes
    //    candidates, so WBF's precision is at least the unweighted
    //    baseline's probe by probe.
    let config = DiMatchingConfig::default();
    for seed in conformance::SEEDS {
        let dataset = conformance::dataset(seed);
        for probe in conformance::PROBES {
            let query = probe_query(&dataset, probe);
            let triple = conformance::run_all(&dataset, &query, &config).unwrap();
            conformance::assert_no_false_negatives(seed, probe, &triple);
            conformance::assert_precision_dominance(
                seed, probe, &dataset, &query, &triple, config.eps,
            );
        }
    }
}

#[test]
fn conformance_weight_consistency_rejects_stitched_false_positives() {
    // Invariant 3: two patterns with distinct weights are hashed into one
    // filter; a stitched candidate that probes points from both finds every
    // bit set (classic Bloom membership accepts every point) but no weight
    // common to all points, so WBF rejects it with an empty intersection.
    let params = FilterParams::optimal(1_000, 0.01).unwrap();
    for seed in conformance::SEEDS {
        let mut wbf = WeightedBloomFilter::new(params, seed);
        let w_a = Weight::new(1, 3).unwrap();
        let w_b = Weight::new(2, 3).unwrap();
        let a_keys = [11u64, 23, 37, 41];
        let b_keys = [53u64, 67, 79, 97];
        for &k in &a_keys {
            wbf.insert(k, w_a);
        }
        for &k in &b_keys {
            wbf.insert(k, w_b);
        }

        // Both genuine candidates still match with their own weight.
        let own = wbf.query_sequence(a_keys).expect("own bits are set");
        assert!(own.contains(w_a), "seed {seed}: true candidate lost");
        let own = wbf.query_sequence(b_keys).expect("own bits are set");
        assert!(own.contains(w_b), "seed {seed}: true candidate lost");

        // The stitched candidate mixes points of both patterns.
        let stitched = [a_keys[0], a_keys[1], b_keys[0], b_keys[1]];
        assert!(
            stitched.iter().all(|&k| wbf.contains(k)),
            "seed {seed}: membership alone (classic Bloom) accepts every stitched point"
        );
        let verdict = wbf.query_sequence(stitched);
        assert!(
            matches!(&verdict, Some(set) if set.is_empty()),
            "seed {seed}: stitched candidate must yield an empty weight \
             intersection, got {verdict:?}"
        );
    }
}

#[test]
fn conformance_runs_are_deterministic() {
    // The harness is seeded end to end: identical seeds and configs must
    // reproduce identical rankings and identical metered costs.
    let config = DiMatchingConfig::default();
    for seed in [conformance::SEEDS[0], conformance::SEEDS[1]] {
        let dataset = conformance::dataset(seed);
        let query = probe_query(&dataset, conformance::PROBES[0]);
        let a = conformance::run_all(&dataset, &query, &config).unwrap();
        let b = conformance::run_all(&dataset, &query, &config).unwrap();
        assert_eq!(a.naive.ranked, b.naive.ranked, "seed {seed}: naive drifted");
        assert_eq!(a.bloom.ranked, b.bloom.ranked, "seed {seed}: bloom drifted");
        assert_eq!(a.wbf.ranked, b.wbf.ranked, "seed {seed}: wbf drifted");
        assert_eq!(a.wbf.cost, b.wbf.cost, "seed {seed}: wbf cost drifted");
    }
}

#[test]
fn communication_ordering_matches_figure_4c() {
    // At city scale the naive method ships the corpus; both filter methods
    // ship a filter plus tiny reports.
    let dataset = Dataset::city_slice(2000, 16, 3).unwrap();
    let config = DiMatchingConfig::default();
    let query = probe_query(&dataset, 0);
    let naive = run_naive(
        &dataset,
        std::slice::from_ref(&query),
        config.eps,
        ExecutionMode::Sequential,
        None,
    )
    .unwrap();
    let wbf = run_wbf(
        &dataset,
        std::slice::from_ref(&query),
        &config,
        ExecutionMode::Sequential,
        None,
    )
    .unwrap();
    let bf = run_bloom(&dataset, &[query], &config, ExecutionMode::Sequential, None).unwrap();
    assert!(
        wbf.cost.total_bytes() < naive.cost.total_bytes(),
        "wbf {} >= naive {}",
        wbf.cost.total_bytes(),
        naive.cost.total_bytes()
    );
    assert!(
        bf.cost.total_bytes() < naive.cost.total_bytes(),
        "bf {} >= naive {}",
        bf.cost.total_bytes(),
        naive.cost.total_bytes()
    );
}

#[test]
fn storage_ordering_matches_figure_4d() {
    let dataset = Dataset::city_slice(2000, 16, 4).unwrap();
    let config = DiMatchingConfig::default();
    let query = probe_query(&dataset, 0);
    let naive = run_naive(
        &dataset,
        std::slice::from_ref(&query),
        config.eps,
        ExecutionMode::Sequential,
        None,
    )
    .unwrap();
    let wbf = run_wbf(
        &dataset,
        std::slice::from_ref(&query),
        &config,
        ExecutionMode::Sequential,
        None,
    )
    .unwrap();
    let bf = run_bloom(&dataset, &[query], &config, ExecutionMode::Sequential, None).unwrap();
    // BF ≤ WBF ≪ naive: the weight table is WBF's storage premium.
    assert!(bf.cost.storage_bytes <= wbf.cost.storage_bytes);
    assert!(wbf.cost.storage_bytes < naive.cost.storage_bytes);
}

#[test]
fn threaded_and_sequential_agree_across_methods() {
    let dataset = Dataset::city_slice(250, 8, 13).unwrap();
    let config = DiMatchingConfig::default();
    let query = probe_query(&dataset, 5);

    let wbf_seq = run_wbf(
        &dataset,
        std::slice::from_ref(&query),
        &config,
        ExecutionMode::Sequential,
        None,
    )
    .unwrap();
    let wbf_thr = run_wbf(
        &dataset,
        std::slice::from_ref(&query),
        &config,
        ExecutionMode::Threaded,
        None,
    )
    .unwrap();
    assert_eq!(wbf_seq.ranked, wbf_thr.ranked);

    let bf_seq = run_bloom(
        &dataset,
        std::slice::from_ref(&query),
        &config,
        ExecutionMode::Sequential,
        None,
    )
    .unwrap();
    let bf_thr = run_bloom(
        &dataset,
        std::slice::from_ref(&query),
        &config,
        ExecutionMode::Threaded,
        None,
    )
    .unwrap();
    assert_eq!(bf_seq.ranked, bf_thr.ranked);

    let naive_seq = run_naive(
        &dataset,
        std::slice::from_ref(&query),
        config.eps,
        ExecutionMode::Sequential,
        None,
    )
    .unwrap();
    let naive_thr = run_naive(
        &dataset,
        &[query],
        config.eps,
        ExecutionMode::Threaded,
        None,
    )
    .unwrap();
    assert_eq!(naive_seq.ranked, naive_thr.ranked);
}

#[test]
fn multi_pattern_queries_share_one_broadcast() {
    // Hashing more query patterns into the one filter must not multiply the
    // number of messages: still one broadcast per station + one report back.
    let dataset = Dataset::city_slice(300, 10, 8).unwrap();
    let config = DiMatchingConfig::default();
    let one = run_wbf(
        &dataset,
        &[probe_query(&dataset, 0)],
        &config,
        ExecutionMode::Sequential,
        None,
    )
    .unwrap();
    let five: Vec<PatternQuery> = (0..5).map(|i| probe_query(&dataset, i * 7)).collect();
    let many = run_wbf(&dataset, &five, &config, ExecutionMode::Sequential, None).unwrap();
    assert_eq!(one.cost.messages, many.cost.messages);
    // The five-pattern audience contains the one-pattern audience.
    let many_set: BTreeSet<UserId> = many.ranked.iter().copied().collect();
    for user in &one.ranked {
        assert!(many_set.contains(user));
    }
}

#[test]
fn batch_of_queries_scans_each_station_exactly_once() {
    // The batch-first acceptance criterion: a batch of Q queries over N
    // stations performs exactly N scan passes (one per station), not Q × N,
    // while Q single-query runs perform Q × N.
    let dataset = conformance::dataset(conformance::SEEDS[0]);
    let config = DiMatchingConfig::default();
    let queries: Vec<PatternQuery> = conformance::PROBES
        .iter()
        .map(|&p| probe_query(&dataset, p))
        .collect();
    let stations = dataset.stations().len() as u64;

    let batch =
        run_pipeline::<Wbf>(&dataset, &queries, &config, &PipelineOptions::default()).unwrap();
    assert_eq!(batch.queries.len(), queries.len());
    assert_eq!(batch.cost.scan_passes, stations);

    let mut single_passes = 0;
    for query in &queries {
        let one = run_wbf(
            &dataset,
            std::slice::from_ref(query),
            &config,
            ExecutionMode::Sequential,
            None,
        )
        .unwrap();
        single_passes += one.cost.scan_passes;
    }
    assert_eq!(single_passes, stations * queries.len() as u64);
}

#[test]
fn batch_per_query_rankings_match_single_query_runs() {
    // Amortizing the broadcast must not change any answer: each verdict of
    // a per-query batch equals the matching single-query pipeline run.
    let dataset = conformance::dataset(conformance::SEEDS[1]);
    let config = DiMatchingConfig::default();
    let queries: Vec<PatternQuery> = conformance::PROBES
        .iter()
        .map(|&p| probe_query(&dataset, p))
        .collect();
    let batch =
        run_pipeline::<Wbf>(&dataset, &queries, &config, &PipelineOptions::default()).unwrap();
    for (i, query) in queries.iter().enumerate() {
        let single = run_wbf(
            &dataset,
            std::slice::from_ref(query),
            &config,
            ExecutionMode::Sequential,
            None,
        )
        .unwrap();
        assert_eq!(
            batch.queries[i].ranked, single.ranked,
            "probe {i}: batch verdict diverged from the single-query run"
        );
    }
}

#[test]
fn sharded_pooled_deployment_preserves_conformance_invariants() {
    // The scaled-out deployment shape — sharded stations multiplexed over a
    // small worker pool — must satisfy the same correctness invariants as
    // the paper's one-thread-per-station setup, with identical bytes.
    let seed = conformance::SEEDS[2];
    let dataset = conformance::dataset(seed);
    let config = DiMatchingConfig::default();
    let query = probe_query(&dataset, conformance::PROBES[1]);
    let flat = run_pipeline::<Wbf>(
        &dataset,
        std::slice::from_ref(&query),
        &config,
        &PipelineOptions::default(),
    )
    .unwrap();
    let scaled = run_pipeline::<Wbf>(
        &dataset,
        std::slice::from_ref(&query),
        &config,
        &PipelineOptions {
            mode: ExecutionMode::ThreadPool { workers: 4 },
            shards: Shards::new(3),
            ..PipelineOptions::default()
        },
    )
    .unwrap();
    assert_eq!(flat.queries[0].ranked, scaled.queries[0].ranked);
    assert_eq!(flat.cost, scaled.cost, "shard layout leaked into the bytes");

    // And the cross-method invariants still hold when the WBF leg runs in
    // the scaled-out shape.
    let naive = run_naive(
        &dataset,
        std::slice::from_ref(&query),
        config.eps,
        ExecutionMode::Sequential,
        None,
    )
    .unwrap();
    let wbf_set: BTreeSet<UserId> = scaled.queries[0].ranked.iter().copied().collect();
    for user in &naive.ranked {
        assert!(
            wbf_set.contains(user),
            "seed {seed}: naive found {user} but sharded WBF missed it"
        );
    }
}

#[test]
fn position_tagged_ablation_is_no_less_precise() {
    let dataset = Dataset::city_slice(400, 12, 17).unwrap();
    let query = probe_query(&dataset, 3);
    let relevant = ground_truth::eps_similar_users(&dataset, query.global(), 2);

    let value_only = DiMatchingConfig::default();
    let tagged = DiMatchingConfig {
        hash_scheme: HashScheme::PositionTagged,
        ..Default::default()
    };

    // The paper's query is top-K; evaluate at K = |relevant| (R-precision).
    let k = Some(relevant.len());
    let a = run_wbf(
        &dataset,
        std::slice::from_ref(&query),
        &value_only,
        ExecutionMode::Sequential,
        k,
    )
    .unwrap();
    let b = run_wbf(&dataset, &[query], &tagged, ExecutionMode::Sequential, k).unwrap();
    let pa = evaluate(a.retrieved(), &relevant).precision;
    let pb = evaluate(b.retrieved(), &relevant).precision;
    assert!(pb >= pa - 1e-9, "tagged {pb} below value-only {pa}");
}

#[test]
fn survey_dataset_effectiveness_floor() {
    // Table II reports ≥ 0.97 precision and ≥ 0.99 recall on the 310-person
    // survey; require a conservative floor here so the test is robust to
    // seed choice (the bench harness reports the exact numbers).
    let dataset = Dataset::survey_310(1);
    let config = DiMatchingConfig::default();
    let mut min_precision: f64 = 1.0;
    let mut min_recall: f64 = 1.0;
    for category in Category::ALL {
        let probe = dataset
            .users()
            .iter()
            .find(|u| u.category == category)
            .unwrap();
        let query = PatternQuery::from_fragments(dataset.fragments(probe.id).unwrap()).unwrap();
        let relevant = ground_truth::eps_similar_users(&dataset, query.global(), config.eps);
        // Top-K query semantics: evaluate at K = |relevant| (R-precision).
        let outcome = run_wbf(
            &dataset,
            std::slice::from_ref(&query),
            &config,
            ExecutionMode::Sequential,
            Some(relevant.len()),
        )
        .unwrap();
        let score = evaluate(outcome.retrieved(), &relevant);
        min_precision = min_precision.min(score.precision);
        min_recall = min_recall.min(score.recall);
    }
    assert!(
        min_precision > 0.9,
        "precision floor violated: {min_precision}"
    );
    assert!(min_recall > 0.95, "recall floor violated: {min_recall}");
}
