//! Property tests for the Bloofi-style routing tree: on *arbitrary* station
//! populations and fanouts 2..=8, routing must never lose a station that
//! could match (no false negatives vs broadcast), incremental maintenance
//! must equal a from-scratch build after any insert/remove interleaving,
//! and degenerate shapes (one station, fanout above the station count) must
//! fall back cleanly.

use dipm::mobilenet::TraceConfig;
use dipm::prelude::*;
use proptest::collection::vec;
use proptest::prelude::*;

fn params() -> FilterParams {
    FilterParams::new(1 << 12, 4).expect("static geometry is valid")
}

/// One generated tree workload: row placements over an arbitrary station
/// population, plus a removal script (indices into the placements, only the
/// first occurrence of each removed).
#[derive(Debug, Clone)]
struct TreeWorkload {
    stations: usize,
    fanout: usize,
    /// `(station_selector, keys)` — the selector is reduced modulo
    /// `stations` so every draw lands on a real station.
    rows: Vec<(usize, Vec<u64>)>,
    removals: Vec<usize>,
    seed: u64,
}

fn arb_tree_workload() -> impl Strategy<Value = TreeWorkload> {
    (
        1usize..=12,
        2usize..=8,
        vec((0usize..64, vec(0u64..5_000, 1..8)), 0..20),
        vec(0usize..20, 0..8),
        any::<u64>(),
    )
        .prop_map(|(stations, fanout, rows, removals, seed)| TreeWorkload {
            stations,
            fanout,
            rows,
            removals,
            seed,
        })
}

/// Applies the workload's placements to a fresh tree.
fn populate(workload: &TreeWorkload) -> RoutingTree {
    let mut tree = RoutingTree::new(workload.stations, workload.fanout, params(), workload.seed)
        .expect("fanout >= 2 builds");
    for (selector, keys) in &workload.rows {
        tree.insert_row(selector % workload.stations, keys)
            .expect("insert succeeds");
    }
    tree
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Broadcast reaches every station; routing may only drop stations the
    // summaries *prove* hold none of the probed keys. Any station that
    // exactly holds a probed key must survive — for every row, probing the
    // row's own keys must route back to its station.
    #[test]
    fn routing_never_loses_a_station_that_holds_a_probed_key(
        workload in arb_tree_workload(),
        probe_sel in 0usize..20,
    ) {
        let tree = populate(&workload);
        for (selector, keys) in &workload.rows {
            let station = (selector % workload.stations) as u32;
            prop_assert!(
                tree.route(keys).contains(&station),
                "station {} pruned for its own row",
                station
            );
        }
        // An arbitrary probe set (one of the inserted rows' key sets, or a
        // miss set): targets must cover every station holding any probed
        // key exactly.
        let probes: Vec<u64> = workload
            .rows
            .get(probe_sel)
            .map(|(_, keys)| keys.clone())
            .unwrap_or_else(|| vec![u64::MAX]);
        let targets = tree.route(&probes);
        for (selector, keys) in &workload.rows {
            let station = (selector % workload.stations) as u32;
            if keys.iter().any(|k| probes.contains(k)) {
                prop_assert!(
                    targets.contains(&station),
                    "station {} holds a probed key but was pruned",
                    station
                );
            }
        }
    }

    // After any interleaving of inserts and removes, the tree equals a
    // from-scratch build over the surviving rows — leaves, summaries and
    // every interior union node.
    #[test]
    fn interleaved_maintenance_equals_from_scratch_build(workload in arb_tree_workload()) {
        let mut incremental = populate(&workload);
        let mut removed = vec![false; workload.rows.len()];
        for &target in &workload.removals {
            if let Some((selector, keys)) = workload.rows.get(target) {
                if !removed[target] {
                    incremental
                        .remove_row(selector % workload.stations, keys)
                        .expect("removing an inserted row succeeds");
                    removed[target] = true;
                }
            }
        }
        let mut fresh =
            RoutingTree::new(workload.stations, workload.fanout, params(), workload.seed)
                .expect("fanout >= 2 builds");
        for (i, (selector, keys)) in workload.rows.iter().enumerate() {
            if !removed[i] {
                fresh
                    .insert_row(selector % workload.stations, keys)
                    .expect("insert succeeds");
            }
        }
        prop_assert_eq!(incremental, fresh);
    }

    // Degenerate shapes fall back cleanly: a single-station tree always
    // broadcasts, and a fanout above the station count still builds a
    // working one-level tree that routes and prunes correctly.
    #[test]
    fn degenerate_trees_fall_back_cleanly(
        fanout in 2usize..=8,
        stations in 2usize..=7,
        keys in vec(0u64..5_000, 1..6),
        seed in any::<u64>(),
    ) {
        // One station: degenerate, everything routes to it even with no
        // matching keys at all.
        let one = RoutingTree::new(1, fanout, params(), seed).expect("builds");
        prop_assert!(one.is_degenerate());
        prop_assert_eq!(one.route(&keys), vec![0]);
        prop_assert_eq!(one.route(&[]), vec![0]);

        // Fanout above the station count: a single root over all leaves.
        let wide_fanout = stations + fanout;
        let mut wide = RoutingTree::new(stations, wide_fanout, params(), seed).expect("builds");
        prop_assert!(!wide.is_degenerate());
        let station = keys.len() % stations;
        wide.insert_row(station, &keys).expect("insert succeeds");
        prop_assert_eq!(wide.route(&keys), vec![station as u32]);
        prop_assert!(wide.route(&[u64::MAX]).is_empty());
    }
}

/// End-to-end no-false-negatives: over arbitrary generated cities, the
/// routed pipeline's rankings equal broadcast's for real user queries and
/// for selective whale profiles, under both hash schemes.
#[derive(Debug, Clone)]
struct CityWorkload {
    users: usize,
    stations: u32,
    seed: u64,
    fanout: usize,
    probe: usize,
    whale_rate: u64,
    position_tagged: bool,
}

fn arb_city_workload() -> impl Strategy<Value = CityWorkload> {
    (
        (12usize..=48, 2u32..=9, any::<u64>()),
        (2usize..=8, 0usize..12, 20u64..400, any::<bool>()),
    )
        .prop_map(
            |((users, stations, seed), (fanout, probe, whale_rate, position_tagged))| {
                CityWorkload {
                    users,
                    stations,
                    seed,
                    fanout,
                    probe,
                    whale_rate,
                    position_tagged,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn routed_pipeline_has_no_false_negatives_on_arbitrary_cities(
        workload in arb_city_workload(),
    ) {
        let dataset = TraceConfig::new(workload.users, workload.stations)
            .days(1)
            .intervals_per_day(8)
            .noise(1)
            .seed(workload.seed)
            .generate()
            .expect("generated city is valid");
        let user = dataset.users()[workload.probe % dataset.users().len()];
        let intervals = dataset.intervals();
        let queries = [
            PatternQuery::from_fragments(dataset.fragments(user.id).expect("user has traffic"))
                .expect("fragments form a valid query"),
            PatternQuery::from_locals(vec![
                (0..intervals).map(|_| workload.whale_rate).collect(),
            ])
            .expect("constant profile is a valid query"),
        ];
        let base = DiMatchingConfig {
            hash_scheme: if workload.position_tagged {
                HashScheme::PositionTagged
            } else {
                HashScheme::ValueOnly
            },
            seed: workload.seed,
            ..DiMatchingConfig::default()
        };
        let routed_config = DiMatchingConfig {
            routing: RoutingPolicy::Tree { fanout: workload.fanout },
            ..base.clone()
        };
        let options = PipelineOptions::default();
        let reference =
            run_pipeline::<Wbf>(&dataset, &queries, &base, &options).expect("broadcast runs");
        let routed =
            run_pipeline::<Wbf>(&dataset, &queries, &routed_config, &options).expect("routed runs");
        for (i, (a, b)) in reference.queries.iter().zip(&routed.queries).enumerate() {
            prop_assert_eq!(
                &a.ranked,
                &b.ranked,
                "query {} ranking diverged under routing",
                i
            );
        }
        // The probe user's own query always retrieves at least the user —
        // the equality above cannot be vacuous.
        prop_assert!(reference.queries[0].ranked.contains(&user.id));
    }
}
