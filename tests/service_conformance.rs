//! Service conformance: multiplexing many tenants over one executor must
//! never change what any single tenant computes or ships.
//!
//! Three invariant families, swept over the shared conformance seeds:
//!
//! 1. **Tenant isolation** — a tenant's mode-invariant cost report and
//!    ranking are byte-identical whether it runs solo or interleaved with
//!    noisy neighbors, under **all four** execution modes (which also must
//!    agree with each other).
//! 2. **Crash-and-recover equivalence** — checkpoint a session mid-stream,
//!    dissolve the center, recover against the stations' retained
//!    memories: every subsequent epoch's results and wire bytes match an
//!    uninterrupted twin, mode by mode, seed by seed.
//! 3. **Admission backpressure** — over-budget tenants are deferred with
//!    their meter ticked, never dropped, and deferral cannot starve.

// The shared oracle is reused for its seeded datasets and probe queries;
// the invariant helpers it also exports are exercised by `end_to_end.rs`.
#[allow(dead_code)]
mod conformance;

use dipm::core::FilterParams;
use dipm::prelude::*;
use dipm::protocol::{ProtocolError, StreamingSession};

const MODES: [ExecutionMode; 4] = [
    ExecutionMode::Sequential,
    ExecutionMode::Threaded,
    ExecutionMode::ThreadPool { workers: 3 },
    ExecutionMode::Async { workers: 3 },
];

fn options(mode: ExecutionMode) -> PipelineOptions {
    PipelineOptions {
        mode,
        shards: Shards::new(2),
        ..PipelineOptions::default()
    }
}

/// Headroom geometry: churn grows query sets past their initial size, and
/// recovery insists the pinned geometry matches the checkpoint's.
fn config() -> DiMatchingConfig {
    DiMatchingConfig {
        fixed_geometry: Some(FilterParams::new(1 << 15, 5).unwrap()),
        ..DiMatchingConfig::default()
    }
}

/// Invariant 1 — the tentpole guarantee: the subject tenant's answers and
/// mode-invariant meters are identical solo vs. beside two noisy neighbors
/// that churn their query sets every epoch, under every execution mode.
#[test]
fn tenant_meters_are_isolated_from_noisy_neighbors_across_modes() {
    for seed in conformance::SEEDS {
        let day0 = conformance::dataset(seed);
        let day1 = conformance::dataset(seed + 1000);
        let subject_query = conformance::probe_query(&day0, conformance::PROBES[0]);
        let noisy_a = conformance::probe_query(&day0, conformance::PROBES[1]);
        let noisy_b = conformance::probe_query(&day0, conformance::PROBES[2]);

        let mut per_mode = Vec::new();
        for mode in MODES {
            // Solo: the subject alone, two epochs with a churned day.
            let mut solo = StreamingSession::new(
                std::slice::from_ref(&subject_query),
                config(),
                options(mode),
            )
            .unwrap();
            let solo_first = solo.run_epoch(&day0).unwrap();
            let solo_second = solo.run_epoch(&day1).unwrap();

            // Multiplexed: same subject, two neighbors churning loudly
            // (one grows its set, one swaps a query out) between epochs.
            let mut service = Service::new(options(mode));
            let subject = TenantId(0);
            service
                .register(subject, std::slice::from_ref(&subject_query), config())
                .unwrap();
            service
                .register(TenantId(1), std::slice::from_ref(&noisy_a), config())
                .unwrap();
            service
                .register(TenantId(2), std::slice::from_ref(&noisy_b), config())
                .unwrap();
            let first = service.run_epoch(&day0).unwrap();
            let retired = service.session(TenantId(2)).unwrap().live_queries()[0];
            service.insert_query(TenantId(1), &noisy_b).unwrap();
            service.insert_query(TenantId(2), &noisy_a).unwrap();
            service.remove_query(TenantId(2), retired).unwrap();
            let second = service.run_epoch(&day1).unwrap();

            for (epoch, (solo_outcome, multi)) in [(&solo_first, &first), (&solo_second, &second)]
                .into_iter()
                .enumerate()
            {
                let multi_outcome = &multi.outcomes[&subject];
                assert_eq!(
                    solo_outcome.outcome.ranked, multi_outcome.outcome.ranked,
                    "seed {seed} {mode:?} epoch {epoch}: neighbors changed the ranking"
                );
                assert_eq!(
                    solo_outcome.outcome.cost.mode_invariant(),
                    multi_outcome.outcome.cost.mode_invariant(),
                    "seed {seed} {mode:?} epoch {epoch}: neighbors changed the meters"
                );
                assert_eq!(solo_outcome.broadcast, multi_outcome.broadcast);
                assert_eq!(solo_outcome.broadcast_bytes, multi_outcome.broadcast_bytes);
            }
            per_mode.push(second.outcomes[&subject].outcome.cost.mode_invariant());
        }
        // And the four modes agree with each other on the subject's meters.
        for other in &per_mode[1..] {
            assert_eq!(
                &per_mode[0], other,
                "seed {seed}: modes moved different bytes"
            );
        }
    }
}

/// Invariant 2 — the acceptance criterion: checkpoint mid-session, rebuild
/// a fresh center from the frame plus the stations' retained memories, and
/// every resumed epoch matches an uninterrupted twin byte for byte —
/// across all four modes and all four conformance seeds.
#[test]
fn crash_and_recover_is_byte_equivalent_to_an_uninterrupted_run() {
    for seed in conformance::SEEDS {
        let day0 = conformance::dataset(seed);
        let day1 = conformance::dataset(seed + 1000);
        let q0 = conformance::probe_query(&day0, conformance::PROBES[0]);
        let q1 = conformance::probe_query(&day0, conformance::PROBES[1]);
        for mode in MODES {
            // The uninterrupted twin: full epoch, churn, then two more
            // epochs (a delta epoch and a pure CDR-churn epoch).
            let mut twin =
                StreamingSession::new(std::slice::from_ref(&q0), config(), options(mode)).unwrap();
            twin.run_epoch(&day0).unwrap();
            twin.insert_query(&q1).unwrap();
            let twin_second = twin.run_epoch(&day1).unwrap();
            let twin_third = twin.run_epoch(&day0).unwrap();

            // The crashing center: same start, same churn — then the
            // center dies with pending (undrained) churn, leaving only
            // its persisted checkpoint and the stations' own memories.
            let mut crashed =
                StreamingSession::new(std::slice::from_ref(&q0), config(), options(mode)).unwrap();
            crashed.run_epoch(&day0).unwrap();
            crashed.insert_query(&q1).unwrap();
            let frame = crashed.checkpoint().unwrap();
            let memories = crashed.release_stations();
            assert!(memories.iter().all(|m| m.has_filter()));

            let mut recovered =
                StreamingSession::recover(frame, memories, config(), options(mode)).unwrap();
            assert_eq!(recovered.epoch(), 1, "recovery must resume, not restart");
            let recovered_second = recovered.run_epoch(&day1).unwrap();
            let recovered_third = recovered.run_epoch(&day0).unwrap();

            for (epoch, (twin_outcome, recovered_outcome)) in [
                (&twin_second, &recovered_second),
                (&twin_third, &recovered_third),
            ]
            .into_iter()
            .enumerate()
            {
                assert_eq!(
                    twin_outcome.outcome.ranked, recovered_outcome.outcome.ranked,
                    "seed {seed} {mode:?} resumed epoch {epoch}: rankings diverged"
                );
                assert_eq!(
                    twin_outcome.outcome.cost, recovered_outcome.outcome.cost,
                    "seed {seed} {mode:?} resumed epoch {epoch}: cost reports diverged"
                );
                assert_eq!(twin_outcome.epoch, recovered_outcome.epoch);
                assert_eq!(twin_outcome.broadcast, recovered_outcome.broadcast);
                assert_eq!(
                    twin_outcome.broadcast_bytes, recovered_outcome.broadcast_bytes,
                    "seed {seed} {mode:?} resumed epoch {epoch}: wire bytes diverged"
                );
                assert_eq!(twin_outcome.rebuild_bytes, recovered_outcome.rebuild_bytes);
            }
            // The resumed session resynced via a delta, not a re-broadcast.
            assert!(matches!(
                recovered_second.broadcast,
                EpochBroadcast::Delta { entries } if entries > 0
            ));
            assert!(recovered_second.broadcast_bytes < recovered_second.rebuild_bytes);
        }
    }
}

/// A checkpoint only restores into a compatible world: a center restarted
/// with a different hash seed (or mismatched station memories) must reject
/// the frame whole instead of silently diverging.
#[test]
fn recovery_rejects_incompatible_configs_and_memories() {
    let day = conformance::dataset(conformance::SEEDS[0]);
    let query = conformance::probe_query(&day, conformance::PROBES[0]);
    let mut session =
        StreamingSession::new(std::slice::from_ref(&query), config(), options(MODES[0])).unwrap();
    session.run_epoch(&day).unwrap();
    let frame = session.checkpoint().unwrap();
    let memories = session.release_stations();

    let reseeded = DiMatchingConfig {
        seed: 0xBAD_5EED,
        ..config()
    };
    assert!(matches!(
        StreamingSession::recover(frame.clone(), Vec::new(), reseeded, options(MODES[0])),
        Err(ProtocolError::CheckpointMismatch { .. })
    ));
    assert!(matches!(
        StreamingSession::recover(frame.clone(), Vec::new(), config(), options(MODES[0])),
        Err(ProtocolError::CheckpointMismatch { .. })
    ));
    // The matching pair still recovers — rejection was the frame's
    // context, not the frame.
    assert!(StreamingSession::recover(frame, memories, config(), options(MODES[0])).is_ok());
}

/// Invariant 3 — backpressure defers, never drops: under a one-byte
/// per-station budget only the first tenant on the idle links is admitted,
/// the other is deferred with its meter ticked and its session untouched,
/// and longest-deferred-first admission lets it run the very next epoch.
#[test]
fn admission_backpressure_defers_without_dropping() {
    let day = conformance::dataset(conformance::SEEDS[1]);
    let q0 = conformance::probe_query(&day, conformance::PROBES[0]);
    let q1 = conformance::probe_query(&day, conformance::PROBES[1]);
    let mut service = Service::with_admission(options(MODES[0]), AdmissionPolicy::per_station(1));
    service
        .register(TenantId(0), std::slice::from_ref(&q0), config())
        .unwrap();
    service
        .register(TenantId(1), std::slice::from_ref(&q1), config())
        .unwrap();

    // Epoch 1: tenant 0 claims the idle links (the first tenant is always
    // admitted — progress guarantee), tenant 1 is over budget.
    let first = service.run_epoch(&day).unwrap();
    assert_eq!(
        first.outcomes.keys().copied().collect::<Vec<_>>(),
        vec![TenantId(0)]
    );
    assert_eq!(first.deferred, vec![TenantId(1)]);
    let deferred_report = service.tenant_report(TenantId(1)).unwrap();
    assert_eq!(deferred_report.deferred_epochs, 1);
    assert_eq!(
        deferred_report.query_bytes, 0,
        "a deferred tenant must not have shipped anything"
    );
    assert_eq!(
        service.session(TenantId(1)).unwrap().epoch(),
        0,
        "deferral must leave the session untouched"
    );

    // Epoch 2: longest-deferred-first puts tenant 1 on the idle links;
    // its pending full broadcast runs now — deferred, never dropped.
    let second = service.run_epoch(&day).unwrap();
    assert!(second.outcomes.contains_key(&TenantId(1)));
    assert_eq!(service.session(TenantId(1)).unwrap().epoch(), 1);
    let report = service.tenant_report(TenantId(1)).unwrap();
    assert_eq!(
        report.deferred_epochs, 1,
        "running does not erase the deferral count"
    );
    assert!(report.query_bytes > 0);

    // An unlimited service admits everyone at once.
    let mut open = Service::new(options(MODES[0]));
    open.register(TenantId(0), std::slice::from_ref(&q0), config())
        .unwrap();
    open.register(TenantId(1), std::slice::from_ref(&q1), config())
        .unwrap();
    let epoch = open.run_epoch(&day).unwrap();
    assert_eq!(epoch.outcomes.len(), 2);
    assert!(epoch.deferred.is_empty());
}
