//! Shared conformance oracle: runs the naive gold standard, the Bloom
//! baseline and WBF over the *same* seeded datasets and exposes the
//! paper's correctness invariants as reusable assertions.
//!
//! The three invariants (Sections III–IV of the paper):
//!
//! 1. **No false negatives** — under the accumulated tolerance mode, every
//!    user the exact naive method retrieves is also reported by WBF.
//! 2. **Precision dominance** — the weight-consistency check only removes
//!    candidates, so WBF precision is at least the Bloom baseline's.
//! 3. **Stitched rejection** — a candidate whose probed bits were set by
//!    *different* patterns carries no common weight and is rejected, even
//!    though a classic Bloom filter accepts it.

use std::collections::BTreeSet;

use dipm::mobilenet::ground_truth;
use dipm::prelude::*;
use dipm::protocol::ProtocolError;

/// The fixed dataset seeds every conformance test sweeps. Three distinct
/// cities plus the quickstart seed; all invariants must hold on each.
pub const SEEDS: [u64; 4] = [5, 17, 29, 42];

/// Users per conformance dataset (kept laptop-fast; the bench harness
/// covers paper scale).
pub const USERS: usize = 300;

/// Stations per conformance dataset.
pub const STATIONS: u32 = 10;

/// Probe indices (into `dataset.users()`) queried per dataset.
pub const PROBES: [usize; 3] = [0, 7, 20];

/// One outcome per method, over identical inputs.
pub struct MethodTriple {
    /// The exact, ship-everything gold standard.
    pub naive: QueryOutcome,
    /// The unweighted Bloom baseline.
    pub bloom: QueryOutcome,
    /// The paper's weighted Bloom filter method.
    pub wbf: QueryOutcome,
}

/// The seeded conformance dataset for one entry of [`SEEDS`].
pub fn dataset(seed: u64) -> Dataset {
    Dataset::city_slice(USERS, STATIONS, seed).expect("conformance preset is valid")
}

/// The decomposition query of the `index`-th user.
pub fn probe_query(dataset: &Dataset, index: usize) -> PatternQuery {
    let user = dataset.users()[index];
    PatternQuery::from_fragments(dataset.fragments(user.id).expect("every user has traffic"))
        .expect("fragments form a valid query")
}

/// Runs all three methods sequentially (deterministic order) over one
/// query with unbounded K, so retrieval sets are directly comparable.
///
/// Every method goes through the one generic `run_pipeline::<S>` — the
/// conformance invariants are checked against the unified pipeline, not
/// per-method forks (which no longer exist).
pub fn run_all(
    dataset: &Dataset,
    query: &PatternQuery,
    config: &DiMatchingConfig,
) -> Result<MethodTriple, ProtocolError> {
    let queries = [query.clone()];
    let options = PipelineOptions::default();
    let naive_config = DiMatchingConfig {
        eps: config.eps,
        ..DiMatchingConfig::default()
    };
    Ok(MethodTriple {
        naive: run_pipeline::<Naive>(dataset, &queries, &naive_config, &options)?.into_merged(None),
        bloom: run_pipeline::<Bloom>(dataset, &queries, config, &options)?.into_merged(None),
        wbf: run_pipeline::<Wbf>(dataset, &queries, config, &options)?.into_merged(None),
    })
}

/// The retrieved user set of one outcome.
pub fn retrieved_set(outcome: &QueryOutcome) -> BTreeSet<UserId> {
    outcome.retrieved().collect()
}

/// Invariant 1: everything naive finds, WBF reports too.
pub fn assert_no_false_negatives(seed: u64, probe: usize, triple: &MethodTriple) {
    let wbf = retrieved_set(&triple.wbf);
    for user in &triple.naive.ranked {
        assert!(
            wbf.contains(user),
            "seed {seed} probe {probe}: naive found {user} but WBF missed it"
        );
    }
}

/// Invariant 2: WBF precision is no worse than Bloom precision against
/// the ε-similarity ground truth (small float slack for the division).
pub fn assert_precision_dominance(
    seed: u64,
    probe: usize,
    dataset: &Dataset,
    query: &PatternQuery,
    triple: &MethodTriple,
    eps: u64,
) {
    let relevant = ground_truth::eps_similar_users(dataset, query.global(), eps);
    let wbf = evaluate(triple.wbf.retrieved(), &relevant).precision;
    let bloom = evaluate(triple.bloom.retrieved(), &relevant).precision;
    assert!(
        wbf >= bloom - 1e-9,
        "seed {seed} probe {probe}: WBF precision {wbf} below Bloom {bloom}"
    );
}
