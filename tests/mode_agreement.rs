//! Pipeline-level execution-mode agreement — all four modes.
//!
//! `dipm_distsim::run_stations` / `run_station_shards` promise that every
//! [`ExecutionMode`] produces identical results. Unit tests in the runtime
//! crate cover pure closures; this suite asserts the promise where it
//! actually matters — through the full generic pipeline, where the modes
//! interleave metered sends, shared-meter updates, shard merging and (under
//! `Async`) virtual-clock scheduling — by requiring **byte-identical
//! mode-invariant `CostReport`s** (every byte, storage and operation meter
//! including `scan_passes`; not just equal rankings) across `Sequential`,
//! `Threaded`, `ThreadPool` and `Async` for every strategy, shard layout
//! and section grouping. Async runs must additionally produce the *same
//! deterministic* `makespan_ticks` on every run and worker count under a
//! fixed seeded latency model — the property that keeps the new latency
//! dimension publishable next to the Fig. 4 meters.

use dipm::prelude::*;
use proptest::prelude::*;

fn modes() -> [ExecutionMode; 6] {
    [
        ExecutionMode::Sequential,
        ExecutionMode::Threaded,
        ExecutionMode::ThreadPool { workers: 1 },
        ExecutionMode::ThreadPool { workers: 3 },
        ExecutionMode::Async { workers: 1 },
        ExecutionMode::Async { workers: 3 },
    ]
}

fn groupings() -> [SectionGrouping; 2] {
    [SectionGrouping::PerQuery, SectionGrouping::Merged]
}

/// A deliberately lumpy latency model so async scheduling has real spread:
/// per-link jitter on, scan time per row on.
fn test_latency(seed: u64) -> LatencyModel {
    LatencyModel {
        base_ticks: 60,
        ticks_per_byte: 1,
        ticks_per_row: 3,
        jitter_ticks: 17,
        seed,
    }
}

fn run_batch<S: FilterStrategy>(
    dataset: &Dataset,
    queries: &[PatternQuery],
    config: &DiMatchingConfig,
    mode: ExecutionMode,
    shards: usize,
    grouping: SectionGrouping,
    seed: u64,
) -> BatchOutcome {
    let options = PipelineOptions {
        mode,
        shards: Shards::new(shards),
        top_k: None,
        grouping,
        latency: test_latency(seed),
    };
    run_pipeline::<S>(dataset, queries, config, &options).expect("pipeline runs")
}

fn assert_mode_agreement<S: FilterStrategy>(seed: u64, shards: usize, batch: usize) {
    let dataset = TraceConfig::new(40, 6)
        .days(1)
        .intervals_per_day(8)
        .noise(1)
        .seed(seed)
        .generate()
        .expect("valid trace");
    let config = DiMatchingConfig::default();
    let queries: Vec<PatternQuery> = (0..batch)
        .map(|i| {
            let user = dataset.users()[(i * 11) % dataset.users().len()];
            PatternQuery::from_fragments(dataset.fragments(user.id).expect("traffic"))
                .expect("valid query")
        })
        .collect();

    for grouping in groupings() {
        let reference = run_batch::<S>(
            &dataset,
            &queries,
            &config,
            ExecutionMode::Sequential,
            shards,
            grouping,
            seed,
        );
        assert_eq!(reference.cost.makespan_ticks, 0, "sync modes model no time");
        let mut async_makespan: Option<u64> = None;
        for mode in modes() {
            let outcome = run_batch::<S>(&dataset, &queries, &config, mode, shards, grouping, seed);
            assert_eq!(
                reference.cost.mode_invariant(),
                outcome.cost.mode_invariant(),
                "seed {seed} shards {shards} {grouping:?}: {mode:?} meters diverged from Sequential"
            );
            assert_eq!(reference.queries.len(), outcome.queries.len());
            for (i, (a, b)) in reference.queries.iter().zip(&outcome.queries).enumerate() {
                assert_eq!(
                    a.ranked, b.ranked,
                    "seed {seed} shards {shards} {grouping:?}: {mode:?} ranking for query {i} diverged"
                );
            }
            match mode {
                ExecutionMode::Async { .. } => {
                    // Every async run — whatever the worker count — must
                    // model the very same virtual times under this seed.
                    let latency = outcome.latency.as_ref().expect("async models time");
                    assert_eq!(latency.makespan_ticks, outcome.cost.makespan_ticks);
                    assert_eq!(latency.stations.len(), dataset.stations().len());
                    match async_makespan {
                        None => async_makespan = Some(outcome.cost.makespan_ticks),
                        Some(expected) => assert_eq!(
                            outcome.cost.makespan_ticks, expected,
                            "seed {seed} shards {shards} {grouping:?}: {mode:?} makespan drifted"
                        ),
                    }
                }
                _ => {
                    assert!(outcome.latency.is_none());
                    assert_eq!(outcome.cost.makespan_ticks, 0);
                }
            }
        }
        // Repeat one async run: same seed ⇒ identical latency report.
        let mode = ExecutionMode::Async { workers: 2 };
        let a = run_batch::<S>(&dataset, &queries, &config, mode, shards, grouping, seed);
        let b = run_batch::<S>(&dataset, &queries, &config, mode, shards, grouping, seed);
        assert_eq!(a.cost, b.cost, "async cost report must be reproducible");
        assert_eq!(
            a.latency, b.latency,
            "async latency report must be reproducible"
        );
        assert!(
            a.cost.makespan_ticks > 0,
            "latency model produces real ticks"
        );
    }
}

proptest! {
    // Full pipeline runs are comparatively expensive; a handful of random
    // (seed, shard, batch) points per strategy is plenty to catch a
    // scheduling-dependent meter or merge bug.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn wbf_modes_produce_byte_identical_cost_reports(
        seed in 0u64..1_000,
        shards in 1usize..5,
        batch in 1usize..4,
    ) {
        assert_mode_agreement::<Wbf>(seed, shards, batch);
    }

    #[test]
    fn bloom_modes_produce_byte_identical_cost_reports(
        seed in 0u64..1_000,
        shards in 1usize..5,
        batch in 1usize..4,
    ) {
        assert_mode_agreement::<Bloom>(seed, shards, batch);
    }

    #[test]
    fn naive_modes_produce_byte_identical_cost_reports(
        seed in 0u64..1_000,
        shards in 1usize..5,
        batch in 1usize..3,
    ) {
        assert_mode_agreement::<Naive>(seed, shards, batch);
    }
}

#[test]
fn legacy_wrappers_agree_across_modes_too() {
    // The single-outcome wrappers ride the same pipeline; spot-check that
    // their merged outcomes agree mode-to-mode as well.
    let dataset = Dataset::small(19);
    let config = DiMatchingConfig::default();
    let query = {
        let probe = dataset.users()[2];
        PatternQuery::from_fragments(dataset.fragments(probe.id).unwrap()).unwrap()
    };
    let seq = run_wbf(
        &dataset,
        std::slice::from_ref(&query),
        &config,
        ExecutionMode::Sequential,
        None,
    )
    .unwrap();
    for mode in modes() {
        let other = run_wbf(&dataset, std::slice::from_ref(&query), &config, mode, None).unwrap();
        assert_eq!(seq.ranked, other.ranked);
        assert_eq!(
            seq.cost.mode_invariant(),
            other.cost.mode_invariant(),
            "{mode:?} meters diverged"
        );
    }
}
