//! Pipeline-level execution-mode agreement.
//!
//! `dipm_distsim::run_stations` / `run_station_shards` promise that every
//! [`ExecutionMode`] produces identical results. Unit tests in the runtime
//! crate cover pure closures; this suite asserts the promise where it
//! actually matters — through the full generic pipeline, where the modes
//! interleave metered sends, shared-meter updates and shard merging — by
//! requiring **byte-identical `CostReport`s** (not just equal rankings)
//! across `Sequential`, `Threaded` and `ThreadPool` for every strategy and
//! shard layout.

use dipm::prelude::*;
use proptest::prelude::*;

fn modes() -> [ExecutionMode; 4] {
    [
        ExecutionMode::Sequential,
        ExecutionMode::Threaded,
        ExecutionMode::ThreadPool { workers: 1 },
        ExecutionMode::ThreadPool { workers: 3 },
    ]
}

fn run_batch<S: FilterStrategy>(
    dataset: &Dataset,
    queries: &[PatternQuery],
    config: &DiMatchingConfig,
    mode: ExecutionMode,
    shards: usize,
) -> BatchOutcome {
    let options = PipelineOptions {
        mode,
        shards: Shards::new(shards),
        top_k: None,
        ..PipelineOptions::default()
    };
    run_pipeline::<S>(dataset, queries, config, &options).expect("pipeline runs")
}

fn assert_mode_agreement<S: FilterStrategy>(seed: u64, shards: usize, batch: usize) {
    let dataset = TraceConfig::new(40, 6)
        .days(1)
        .intervals_per_day(8)
        .noise(1)
        .seed(seed)
        .generate()
        .expect("valid trace");
    let config = DiMatchingConfig::default();
    let queries: Vec<PatternQuery> = (0..batch)
        .map(|i| {
            let user = dataset.users()[(i * 11) % dataset.users().len()];
            PatternQuery::from_fragments(dataset.fragments(user.id).expect("traffic"))
                .expect("valid query")
        })
        .collect();

    let reference = run_batch::<S>(
        &dataset,
        &queries,
        &config,
        ExecutionMode::Sequential,
        shards,
    );
    for mode in modes() {
        let outcome = run_batch::<S>(&dataset, &queries, &config, mode, shards);
        assert_eq!(
            reference.cost, outcome.cost,
            "seed {seed} shards {shards}: {mode:?} cost diverged from Sequential"
        );
        assert_eq!(reference.queries.len(), outcome.queries.len());
        for (i, (a, b)) in reference.queries.iter().zip(&outcome.queries).enumerate() {
            assert_eq!(
                a.ranked, b.ranked,
                "seed {seed} shards {shards}: {mode:?} ranking for query {i} diverged"
            );
        }
    }
}

proptest! {
    // Full pipeline runs are comparatively expensive; a handful of random
    // (seed, shard, batch) points per strategy is plenty to catch a
    // scheduling-dependent meter or merge bug.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn wbf_modes_produce_byte_identical_cost_reports(
        seed in 0u64..1_000,
        shards in 1usize..5,
        batch in 1usize..4,
    ) {
        assert_mode_agreement::<Wbf>(seed, shards, batch);
    }

    #[test]
    fn bloom_modes_produce_byte_identical_cost_reports(
        seed in 0u64..1_000,
        shards in 1usize..5,
        batch in 1usize..4,
    ) {
        assert_mode_agreement::<Bloom>(seed, shards, batch);
    }

    #[test]
    fn naive_modes_produce_byte_identical_cost_reports(
        seed in 0u64..1_000,
        shards in 1usize..5,
        batch in 1usize..3,
    ) {
        assert_mode_agreement::<Naive>(seed, shards, batch);
    }
}

#[test]
fn legacy_wrappers_agree_across_modes_too() {
    // The single-outcome wrappers ride the same pipeline; spot-check that
    // their merged outcomes agree mode-to-mode as well.
    let dataset = Dataset::small(19);
    let config = DiMatchingConfig::default();
    let query = {
        let probe = dataset.users()[2];
        PatternQuery::from_fragments(dataset.fragments(probe.id).unwrap()).unwrap()
    };
    let seq = run_wbf(
        &dataset,
        std::slice::from_ref(&query),
        &config,
        ExecutionMode::Sequential,
        None,
    )
    .unwrap();
    for mode in modes() {
        let other = run_wbf(&dataset, std::slice::from_ref(&query), &config, mode, None).unwrap();
        assert_eq!(seq.ranked, other.ranked);
        assert_eq!(seq.cost, other.cost, "{mode:?} cost diverged");
    }
}
