//! Top-k / dynamic-pruning conformance: every rung of the `ScanAlgorithm`
//! ladder must be **bit-for-bit** identical to `Exhaustive` — in the
//! shard-scan core, in the top-k kernel, and through the full pipeline
//! under all four execution modes.
//!
//! Two layers:
//!
//! 1. **Kernel**: `scan_shard_wbf` and `scan_shard_wbf_topk` over every
//!    conformance seed's sharded stations, compared down to the encoded
//!    wire bytes for every algorithm (and every k for the top-k kernel).
//! 2. **Pipeline**: `run_pipeline::<Wbf>` with a top-k cutoff across
//!    Sequential / Threaded / ThreadPool / Async — rankings, verdicts and
//!    the byte meters (query and report traffic) must match `Exhaustive`
//!    exactly, and each algorithm's own meters must stay mode-invariant.

#[allow(dead_code)]
mod conformance;

use dipm::prelude::*;
use dipm::protocol::wire;
use dipm::protocol::{
    scan_shard_wbf, scan_shard_wbf_topk, BaseStation, BuiltFilter, WbfScanSection,
};

/// Top-k cutoffs the kernel sweep exercises: empty, tiny, moderate, and
/// beyond any candidate population.
const KS: [usize; 4] = [0, 1, 5, 10_000];

fn modes() -> [ExecutionMode; 4] {
    [
        ExecutionMode::Sequential,
        ExecutionMode::Threaded,
        ExecutionMode::ThreadPool { workers: 3 },
        ExecutionMode::Async { workers: 2 },
    ]
}

fn with_algorithm(config: &DiMatchingConfig, algorithm: ScanAlgorithm) -> DiMatchingConfig {
    DiMatchingConfig {
        scan_algorithm: algorithm,
        ..config.clone()
    }
}

#[test]
fn scan_core_is_bit_identical_across_the_algorithm_ladder() {
    let config = DiMatchingConfig::default();
    for seed in conformance::SEEDS {
        let dataset = conformance::dataset(seed);
        let builds: Vec<BuiltFilter> = conformance::PROBES
            .iter()
            .map(|&probe| {
                let query = conformance::probe_query(&dataset, probe);
                build_wbf(std::slice::from_ref(&query), &config).expect("filter builds")
            })
            .collect();
        let sections: Vec<WbfScanSection<'_>> = builds
            .iter()
            .enumerate()
            .map(|(i, b)| (i as u32, &b.filter, b.query_totals.as_slice()))
            .collect();
        let mut hits = 0usize;
        for &station in dataset.stations() {
            let locals = dataset.station_locals(station).expect("station has users");
            let base = BaseStation::from_locals(station, locals, Shards::new(2));
            for shard_index in 0..base.shard_count() {
                let shard = base.shard(shard_index);
                let reference = scan_shard_wbf(&sections, shard, &config, None).expect("scan runs");
                let reference_bytes =
                    wire::encode_tagged_weight_reports(&reference).expect("encodes");
                for algorithm in ScanAlgorithm::ALL {
                    let pruned =
                        scan_shard_wbf(&sections, shard, &with_algorithm(&config, algorithm), None)
                            .expect("pruned scan runs");
                    let pruned_bytes =
                        wire::encode_tagged_weight_reports(&pruned).expect("encodes");
                    assert_eq!(
                        pruned_bytes, reference_bytes,
                        "seed {seed}, station {station:?}, shard {shard_index}: \
                         {algorithm:?} changed the wire bytes"
                    );
                }
                hits += reference.len();
            }
        }
        assert!(hits > 0, "seed {seed} produced no reports — vacuous pass");
    }
}

#[test]
fn topk_kernel_is_bit_identical_across_the_ladder_for_every_k() {
    let config = DiMatchingConfig::default();
    for seed in conformance::SEEDS {
        let dataset = conformance::dataset(seed);
        let builds: Vec<BuiltFilter> = conformance::PROBES
            .iter()
            .map(|&probe| {
                let query = conformance::probe_query(&dataset, probe);
                build_wbf(std::slice::from_ref(&query), &config).expect("filter builds")
            })
            .collect();
        let sections: Vec<WbfScanSection<'_>> = builds
            .iter()
            .enumerate()
            .map(|(i, b)| (i as u32, &b.filter, b.query_totals.as_slice()))
            .collect();
        let mut truncations = 0usize;
        for &station in dataset.stations() {
            let locals = dataset.station_locals(station).expect("station has users");
            let base = BaseStation::from_locals(station, locals, Shards::new(2));
            for shard_index in 0..base.shard_count() {
                let shard = base.shard(shard_index);
                let full = scan_shard_wbf(&sections, shard, &config, None).expect("scan runs");
                for k in KS {
                    let reference =
                        scan_shard_wbf_topk(&sections, shard, &config, k, None).expect("runs");
                    if k > 0 && reference.len() < full.len() {
                        truncations += 1;
                    }
                    // Every kept report must exist in the full scan, capped
                    // at k per section.
                    assert!(reference.len() <= sections.len() * k);
                    for report in &reference {
                        assert!(
                            full.contains(report),
                            "seed {seed}: top-k invented report {report:?}"
                        );
                    }
                    let reference_bytes =
                        wire::encode_tagged_weight_reports(&reference).expect("encodes");
                    for algorithm in ScanAlgorithm::ALL {
                        let pruned = scan_shard_wbf_topk(
                            &sections,
                            shard,
                            &with_algorithm(&config, algorithm),
                            k,
                            None,
                        )
                        .expect("pruned scan runs");
                        let pruned_bytes =
                            wire::encode_tagged_weight_reports(&pruned).expect("encodes");
                        assert_eq!(
                            pruned_bytes, reference_bytes,
                            "seed {seed}, station {station:?}, shard {shard_index}, k {k}: \
                             {algorithm:?} changed the top-k wire bytes"
                        );
                    }
                }
            }
        }
        assert!(
            truncations > 0,
            "seed {seed}: no shard ever truncated — the k sweep is vacuous"
        );
    }
}

#[test]
fn pipeline_topk_matches_exhaustive_on_every_seed_and_mode() {
    let base = DiMatchingConfig::default();
    for seed in conformance::SEEDS {
        let dataset = conformance::dataset(seed);
        let query = conformance::probe_query(&dataset, conformance::PROBES[1]);
        let queries = [query];
        for mode in modes() {
            let options = PipelineOptions {
                mode,
                shards: Shards::new(2),
                top_k: Some(5),
                ..PipelineOptions::default()
            };
            let reference =
                run_pipeline::<Wbf>(&dataset, &queries, &base, &options).expect("pipeline runs");
            for algorithm in ScanAlgorithm::ALL {
                let config = with_algorithm(&base, algorithm);
                let outcome = run_pipeline::<Wbf>(&dataset, &queries, &config, &options)
                    .expect("pipeline runs");
                // Answers are bit-identical to exhaustive...
                for (i, (a, b)) in reference.queries.iter().zip(&outcome.queries).enumerate() {
                    assert_eq!(
                        a.ranked, b.ranked,
                        "seed {seed} {mode:?} {algorithm:?}: query {i} ranking diverged"
                    );
                }
                // ...and so is every byte that crossed the network.
                assert_eq!(
                    (reference.cost.query_bytes, reference.cost.report_bytes),
                    (outcome.cost.query_bytes, outcome.cost.report_bytes),
                    "seed {seed} {mode:?} {algorithm:?}: traffic diverged"
                );
                // Exhaustive never prunes, whatever the mode.
                if algorithm == ScanAlgorithm::Exhaustive {
                    assert_eq!(outcome.cost.rows_pruned, 0);
                    assert_eq!(outcome.cost.blocks_skipped, 0);
                }
            }
        }
        // Per algorithm: the full meter set (pruning counters included) is
        // mode-invariant — pruning decisions are pure per-row/per-block
        // functions, independent of scheduling.
        for algorithm in ScanAlgorithm::ALL {
            let config = with_algorithm(&base, algorithm);
            let mut reference_cost: Option<CostReport> = None;
            for mode in modes() {
                let options = PipelineOptions {
                    mode,
                    shards: Shards::new(2),
                    top_k: Some(5),
                    ..PipelineOptions::default()
                };
                let queries = [conformance::probe_query(&dataset, conformance::PROBES[1])];
                let outcome = run_pipeline::<Wbf>(&dataset, &queries, &config, &options)
                    .expect("pipeline runs");
                match &reference_cost {
                    None => reference_cost = Some(outcome.cost.mode_invariant()),
                    Some(expected) => assert_eq!(
                        expected,
                        &outcome.cost.mode_invariant(),
                        "seed {seed} {algorithm:?}: {mode:?} meters diverged"
                    ),
                }
            }
        }
    }
}
