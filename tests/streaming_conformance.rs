//! Streaming conformance: standing queries must survive streaming updates
//! without ever diverging from the build-once pipeline they replace.
//!
//! Three invariant families, swept over the shared conformance seeds:
//!
//! 1. **Counting rebuild-equivalence** — a [`CountingWbf`] after any
//!    interleaving of inserts and removes is query-equivalent (and
//!    snapshot-identical) to a fresh build over the surviving multiset.
//! 2. **Delta-path equivalence** — after any query-churn sequence, a
//!    streaming session's epoch answers byte-match a from-scratch
//!    `run_pipeline::<Wbf>` over the same final query set at the same
//!    geometry, under **all four** execution modes.
//! 3. **Delta-frame fidelity** — the deltas a real session's counting
//!    filter emits round-trip the wire exactly, and replaying them onto a
//!    station-side filter reproduces the center's snapshot.

// The shared oracle is reused for its seeded datasets and probe queries;
// the invariant helpers it also exports are exercised by `end_to_end.rs`.
#[allow(dead_code)]
mod conformance;

use dipm::core::{encode, CountingWbf, FilterParams, Weight, WeightedBloomFilter};
use dipm::prelude::*;
use dipm::protocol::{run_streaming, wire, EpochBroadcast, StreamingSession, StreamingUpdate};
use proptest::collection::vec;
use proptest::prelude::*;

fn params() -> FilterParams {
    FilterParams::new(1 << 12, 5).unwrap()
}

/// The pair pool interleavings draw from: keys spread over the hash space,
/// weights over a handful of denominators (so removals hit shared
/// positions and shared weights alike).
fn pair(index: u64) -> (u64, Weight) {
    let key = index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let weight = Weight::new(index % 9 + 1, 12).unwrap();
    (key, weight)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Invariant 1, driven by arbitrary interleavings: walk a random
    // op-sequence where each step inserts a new pair or removes a random
    // currently-live one; at the end the filter must equal a fresh build
    // over exactly the survivors.
    #[test]
    fn counting_filter_is_rebuild_equivalent_under_any_interleaving(
        ops in vec((any::<bool>(), any::<u64>()), 1..120),
        seed_index in 0usize..conformance::SEEDS.len(),
    ) {
        let seed = conformance::SEEDS[seed_index];
        let mut filter = CountingWbf::new(params(), seed);
        let mut live: Vec<(u64, Weight)> = Vec::new();
        let mut next = 0u64;
        for (is_insert, pick) in ops {
            if is_insert || live.is_empty() {
                let (key, weight) = pair(next);
                next += 1;
                filter.insert(key, weight).unwrap();
                live.push((key, weight));
            } else {
                let (key, weight) = live.swap_remove(pick as usize % live.len());
                filter.remove(key, weight).unwrap();
            }
        }
        let mut fresh = CountingWbf::new(params(), seed);
        let mut reference = WeightedBloomFilter::new(params(), seed);
        for &(key, weight) in &live {
            fresh.insert(key, weight).unwrap();
            reference.insert(key, weight);
        }
        prop_assert_eq!(&filter, &fresh, "counting state diverged from a fresh build");
        prop_assert_eq!(filter.snapshot(), reference, "snapshot diverged from a fresh WBF");
        // Query-equivalence on a probe sample, including sequences.
        for probe in 0..next.max(8) {
            let (key, _) = pair(probe);
            prop_assert_eq!(filter.query(key), fresh.query(key));
        }
    }

    // Invariant 3: a real churn sequence's deltas round-trip the wire and
    // replay onto a station-held filter exactly.
    #[test]
    fn session_deltas_roundtrip_and_replay_exactly(
        churn in vec((any::<bool>(), any::<u64>()), 1..40),
        seed_index in 0usize..conformance::SEEDS.len(),
    ) {
        let seed = conformance::SEEDS[seed_index];
        let mut center = CountingWbf::new(params(), seed);
        let mut station = WeightedBloomFilter::new(params(), seed);
        let mut live: Vec<(u64, Weight)> = Vec::new();
        let mut next = 0u64;
        for epoch_ops in churn.chunks(5) {
            for &(is_insert, pick) in epoch_ops {
                if is_insert || live.is_empty() {
                    let (key, weight) = pair(next);
                    next += 1;
                    center.insert(key, weight).unwrap();
                    live.push((key, weight));
                } else {
                    let (key, weight) = live.swap_remove(pick as usize % live.len());
                    center.remove(key, weight).unwrap();
                }
            }
            // One "broadcast": drain, frame, decode, apply at the station.
            let delta = wire::FilterDelta { entries: center.drain_dirty() };
            let frame = wire::encode_station_update(&wire::StationUpdate::Delta {
                epoch: 0,
                query_totals: vec![],
                delta: delta.clone(),
            }).unwrap();
            let decoded = wire::decode_station_update(frame).unwrap();
            let wire::StationUpdate::Delta { delta: received, .. } = decoded else {
                panic!("kind flipped in flight");
            };
            prop_assert_eq!(&received, &delta, "delta did not round-trip");
            for (pos, diff) in &received.entries {
                station.apply_diff(*pos, diff).unwrap();
            }
            // Structural and behavioral equivalence. (The `inserted`
            // statistic is deliberately excluded: it refreshes on full
            // broadcasts only and never affects matching.)
            let snapshot = center.snapshot();
            prop_assert_eq!(station.bits(), snapshot.bits(), "bit state diverged");
            for probe in 0..next.max(8) {
                let (key, _) = pair(probe);
                prop_assert_eq!(
                    station.query(key),
                    snapshot.query(key),
                    "query {} diverged after delta replay",
                    key
                );
            }
        }
    }
}

/// Invariant 2 — the acceptance criterion: after a churn sequence, every
/// execution mode's streaming answers byte-match a from-scratch merged
/// pipeline over the surviving query set at the session's geometry.
#[test]
fn streaming_epochs_match_rebuilds_across_all_modes_and_seeds() {
    for seed in conformance::SEEDS {
        let dataset = conformance::dataset(seed);
        let day1 = conformance::dataset(seed + 1000);
        let q0 = conformance::probe_query(&dataset, conformance::PROBES[0]);
        let q1 = conformance::probe_query(&dataset, conformance::PROBES[1]);
        let q2 = conformance::probe_query(&dataset, conformance::PROBES[2]);
        let config = DiMatchingConfig {
            // Headroom: churn grows the set past its initial size.
            fixed_geometry: Some(FilterParams::new(1 << 15, 5).unwrap()),
            ..DiMatchingConfig::default()
        };
        let modes = [
            ExecutionMode::Sequential,
            ExecutionMode::Threaded,
            ExecutionMode::ThreadPool { workers: 3 },
            ExecutionMode::Async { workers: 3 },
        ];
        let mut per_mode = Vec::new();
        for mode in modes {
            let options = PipelineOptions {
                mode,
                shards: Shards::new(2),
                ..PipelineOptions::default()
            };
            let mut session =
                StreamingSession::new(std::slice::from_ref(&q0), config.clone(), options).unwrap();
            // Epoch 0: initial set {q0} over day 0.
            let first = session.run_epoch(&dataset).unwrap();
            assert_eq!(first.broadcast, EpochBroadcast::Full);
            // Churn: +q1 +q2 −q0, then an epoch over churned CDRs (day 1).
            let id0 = session.live_queries()[0];
            session.insert_query(&q1).unwrap();
            session.insert_query(&q2).unwrap();
            session.remove_query(id0).unwrap();
            let second = session.run_epoch(&day1).unwrap();
            assert!(matches!(second.broadcast, EpochBroadcast::Delta { .. }));

            // The from-scratch comparator over the surviving set {q1, q2}.
            let rebuild_options = PipelineOptions {
                grouping: SectionGrouping::Merged,
                ..options
            };
            let reference =
                run_pipeline::<Wbf>(&day1, &[q1.clone(), q2.clone()], &config, &rebuild_options)
                    .unwrap()
                    .into_merged(None);
            assert_eq!(
                second.outcome.ranked, reference.ranked,
                "seed {seed} {mode:?}: streaming diverged from the rebuild"
            );
            assert_eq!(
                second.outcome.cost.report_bytes, reference.cost.report_bytes,
                "seed {seed} {mode:?}: identical state must ship identical reports"
            );
            per_mode.push((
                second.outcome.ranked.clone(),
                second.outcome.cost,
                second.broadcast,
            ));
        }
        // And the four modes agree with each other byte for byte.
        let (ranked, cost, broadcast) = &per_mode[0];
        for (other_ranked, other_cost, other_broadcast) in &per_mode[1..] {
            assert_eq!(
                ranked, other_ranked,
                "seed {seed}: modes ranked differently"
            );
            assert_eq!(
                cost.mode_invariant(),
                other_cost.mode_invariant(),
                "seed {seed}: modes moved different bytes"
            );
            assert_eq!(broadcast, other_broadcast);
        }
    }
}

/// The streaming session's full broadcast is the ordinary encoded filter:
/// a station that decodes it holds exactly the center's snapshot (so the
/// whole delta chain is anchored to a verified state).
#[test]
fn full_broadcast_carries_the_exact_snapshot() {
    let dataset = conformance::dataset(conformance::SEEDS[0]);
    let query = conformance::probe_query(&dataset, 0);
    let mut session = StreamingSession::new(
        std::slice::from_ref(&query),
        DiMatchingConfig::default(),
        PipelineOptions::default(),
    )
    .unwrap();
    let built = build_wbf(std::slice::from_ref(&query), &DiMatchingConfig::default()).unwrap();
    let encoded = encode::encode_wbf(&built.filter).unwrap();
    let decoded = encode::decode_wbf(encoded).unwrap();
    assert_eq!(
        decoded, built.filter,
        "wire round-trip must preserve the filter"
    );
    // The session's center state equals the one-shot build over the same
    // set (geometry may differ only through sizing, which `new` matched).
    session.run_epoch(&dataset).unwrap();
    assert_eq!(session.params().bits(), built.stats.bits);
}

/// `run_streaming` applies updates in remove-then-insert order before each
/// epoch and reports per-epoch economics.
#[test]
fn run_streaming_drives_update_sequences() {
    let dataset = conformance::dataset(conformance::SEEDS[1]);
    let q0 = conformance::probe_query(&dataset, 0);
    let q1 = conformance::probe_query(&dataset, 7);
    let config = DiMatchingConfig {
        fixed_geometry: Some(FilterParams::new(1 << 15, 5).unwrap()),
        ..DiMatchingConfig::default()
    };
    let outcomes = run_streaming(
        std::slice::from_ref(&q0),
        vec![
            (&dataset, StreamingUpdate::none()),
            (
                &dataset,
                StreamingUpdate {
                    insert: vec![q1],
                    remove: vec![],
                },
            ),
        ],
        config,
        PipelineOptions::default(),
    )
    .unwrap();
    assert_eq!(outcomes.len(), 2);
    assert_eq!(outcomes[0].broadcast, EpochBroadcast::Full);
    assert!(matches!(
        outcomes[1].broadcast,
        EpochBroadcast::Delta { entries } if entries > 0
    ));
    assert!(outcomes[1].broadcast_bytes < outcomes[1].rebuild_bytes);
}
