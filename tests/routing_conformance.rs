//! Query-routing conformance: `RoutingPolicy::Tree` must be invisible in
//! the answers. Routing only decides *which stations hear the broadcast* —
//! a pruned station is one the summary tree proves cannot report, so the
//! routed pipeline's rankings must be bit-identical to
//! `RoutingPolicy::BroadcastAll` on every conformance seed, under every
//! execution mode, both section groupings, and for the Bloom baseline as
//! well as WBF.
//!
//! Two regimes are pinned separately:
//!
//! 1. **Dense population** (the shared conformance cities): every station
//!    hosts look-alikes of every query, so the tree keeps everyone —
//!    routing must cost its summary bytes and change nothing.
//! 2. **Selective queries** (high-volume always-on profiles under the
//!    position-tagged hash scheme): the tree prunes stations, and the
//!    answers still match broadcast exactly while the query traffic drops
//!    strictly below broadcast-to-all.

#[allow(dead_code)]
mod conformance;

use dipm::prelude::*;

/// Tree fanouts the conformance sweep exercises.
const FANOUTS: [usize; 2] = [2, 4];

fn modes() -> [ExecutionMode; 4] {
    [
        ExecutionMode::Sequential,
        ExecutionMode::Threaded,
        ExecutionMode::ThreadPool { workers: 3 },
        ExecutionMode::Async { workers: 2 },
    ]
}

fn groupings() -> [SectionGrouping; 2] {
    [SectionGrouping::PerQuery, SectionGrouping::Merged]
}

fn with_routing(config: &DiMatchingConfig, fanout: usize) -> DiMatchingConfig {
    DiMatchingConfig {
        routing: RoutingPolicy::Tree { fanout },
        ..config.clone()
    }
}

/// An always-on high-volume profile no conformance-city phone exhibits —
/// the selective query that lets the tree prune whole subtrees.
fn whale_query(dataset: &Dataset, rate: u64) -> PatternQuery {
    let intervals = dataset.intervals();
    PatternQuery::from_locals(vec![
        (0..intervals).map(|_| rate).collect(),
        (0..intervals).map(|_| rate / 2).collect(),
    ])
    .expect("constant profiles form a valid query")
}

#[test]
fn routed_pipeline_matches_broadcast_on_every_seed_mode_and_grouping() {
    let base = DiMatchingConfig::default();
    for seed in conformance::SEEDS {
        let dataset = conformance::dataset(seed);
        let queries: Vec<PatternQuery> = conformance::PROBES
            .iter()
            .map(|&probe| conformance::probe_query(&dataset, probe))
            .collect();
        let mut hits = 0usize;
        for mode in modes() {
            for grouping in groupings() {
                let options = PipelineOptions {
                    mode,
                    shards: Shards::new(2),
                    grouping,
                    ..PipelineOptions::default()
                };
                let reference = run_pipeline::<Wbf>(&dataset, &queries, &base, &options)
                    .expect("broadcast pipeline runs");
                hits += reference
                    .queries
                    .iter()
                    .map(|q| q.ranked.len())
                    .sum::<usize>();
                assert_eq!(
                    reference.cost.routing_bytes, 0,
                    "broadcast-all must not move routing traffic"
                );
                for fanout in FANOUTS {
                    let config = with_routing(&base, fanout);
                    let outcome = run_pipeline::<Wbf>(&dataset, &queries, &config, &options)
                        .expect("routed pipeline runs");
                    for (i, (a, b)) in reference.queries.iter().zip(&outcome.queries).enumerate() {
                        assert_eq!(
                            a.ranked, b.ranked,
                            "seed {seed} {mode:?} {grouping:?} fanout {fanout}: \
                             query {i} ranking diverged under routing"
                        );
                    }
                    assert!(
                        outcome.cost.routing_bytes > 0,
                        "seed {seed} {mode:?} {grouping:?} fanout {fanout}: \
                         the tree moved no summary traffic — routing never engaged"
                    );
                }
            }
        }
        assert!(hits > 0, "seed {seed} produced no reports — vacuous pass");
    }
}

#[test]
fn routed_bloom_baseline_matches_broadcast() {
    let base = DiMatchingConfig::default();
    for seed in conformance::SEEDS {
        let dataset = conformance::dataset(seed);
        let queries = [conformance::probe_query(&dataset, conformance::PROBES[1])];
        let options = PipelineOptions::default();
        let reference =
            run_pipeline::<Bloom>(&dataset, &queries, &base, &options).expect("baseline runs");
        for fanout in FANOUTS {
            let outcome =
                run_pipeline::<Bloom>(&dataset, &queries, &with_routing(&base, fanout), &options)
                    .expect("routed baseline runs");
            assert_eq!(
                reference.queries[0].ranked, outcome.queries[0].ranked,
                "seed {seed} fanout {fanout}: Bloom baseline ranking diverged under routing"
            );
            assert!(outcome.cost.routing_bytes > 0);
        }
    }
}

#[test]
fn routed_meters_are_mode_invariant() {
    let base = DiMatchingConfig::default();
    for seed in conformance::SEEDS {
        let dataset = conformance::dataset(seed);
        let queries = [conformance::probe_query(&dataset, conformance::PROBES[1])];
        for fanout in FANOUTS {
            let config = with_routing(&base, fanout);
            let mut reference_cost: Option<CostReport> = None;
            for mode in modes() {
                let options = PipelineOptions {
                    mode,
                    shards: Shards::new(2),
                    ..PipelineOptions::default()
                };
                let outcome = run_pipeline::<Wbf>(&dataset, &queries, &config, &options)
                    .expect("routed pipeline runs");
                // `mode_invariant` zeroes only the makespan, so this pins
                // stations_pruned and routing_bytes (alongside every other
                // meter) as pure functions of the inputs, not of
                // scheduling.
                match &reference_cost {
                    None => reference_cost = Some(outcome.cost.mode_invariant()),
                    Some(expected) => assert_eq!(
                        expected,
                        &outcome.cost.mode_invariant(),
                        "seed {seed} fanout {fanout}: {mode:?} meters diverged"
                    ),
                }
            }
        }
    }
}

#[test]
fn selective_queries_prune_stations_without_changing_answers() {
    // Position-tagged keys make summaries selective enough to prune (the
    // paper's value-only scheme shares small accumulated values across the
    // whole population; see the routing module docs).
    let base = DiMatchingConfig {
        hash_scheme: HashScheme::PositionTagged,
        ..DiMatchingConfig::default()
    };
    for seed in conformance::SEEDS {
        let dataset = conformance::dataset(seed);
        let queries = [whale_query(&dataset, 300)];
        let mut pruned_somewhere = false;
        for mode in modes() {
            let options = PipelineOptions {
                mode,
                shards: Shards::new(2),
                ..PipelineOptions::default()
            };
            let reference = run_pipeline::<Wbf>(&dataset, &queries, &base, &options)
                .expect("broadcast pipeline runs");
            let mut pruned: Option<u64> = None;
            for fanout in FANOUTS {
                let outcome =
                    run_pipeline::<Wbf>(&dataset, &queries, &with_routing(&base, fanout), &options)
                        .expect("routed pipeline runs");
                assert_eq!(
                    reference.queries[0].ranked, outcome.queries[0].ranked,
                    "seed {seed} {mode:?} fanout {fanout}: pruning changed the answer"
                );
                if outcome.cost.stations_pruned > 0 {
                    pruned_somewhere = true;
                    // Pruned stations never hear the query: broadcast
                    // traffic must drop strictly below broadcast-to-all.
                    assert!(
                        outcome.cost.query_bytes < reference.cost.query_bytes,
                        "seed {seed} {mode:?} fanout {fanout}: pruning saved no query bytes"
                    );
                }
                // Pruning is a pure function of the tree and the probe set
                // — every fanout and mode must agree on the count.
                match pruned {
                    None => pruned = Some(outcome.cost.stations_pruned),
                    Some(expected) => assert_eq!(
                        expected, outcome.cost.stations_pruned,
                        "seed {seed} {mode:?}: fanout {fanout} changed what got pruned"
                    ),
                }
            }
        }
        assert!(
            pruned_somewhere,
            "seed {seed}: the selective query never pruned — vacuous pass"
        );
    }
}
