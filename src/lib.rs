//! **dipm** — Distributed Incomplete Pattern Matching via a Novel Weighted
//! Bloom Filter.
//!
//! A from-scratch Rust reproduction of Liu, Kang, Chen & Ni, *Distributed
//! Incomplete Pattern Matching via a Novel Weighted Bloom Filter*,
//! IEEE ICDCS 2012 (DOI 10.1109/ICDCS.2012.24).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — weighted Bloom filter, classic Bloom filter, exact rational
//!   weights, filter parameter math, wire encoding.
//! * [`timeseries`] — communication patterns, accumulation (Eq. 3), uniform
//!   sampling, ε-similarity (Eq. 2), combination enumeration (Eq. 4).
//! * [`mobilenet`] — the synthetic city-scale mobile network substituting
//!   for the paper's proprietary CDR corpus.
//! * [`distsim`] — the simulated deployment: byte-accounted messaging,
//!   one-thread-per-station, pooled and async execution (a vendored
//!   mini-executor with a virtual-clock latency model).
//! * [`protocol`] — the DI-matching framework (Algorithms 1–3) plus the
//!   naive and Bloom-filter baselines and effectiveness metrics.
//!
//! # Quickstart
//!
//! ```
//! use dipm::prelude::*;
//!
//! # fn main() -> Result<(), dipm::protocol::ProtocolError> {
//! // A synthetic city: users with category-driven routines over stations.
//! let dataset = Dataset::small(42);
//!
//! // The service provider's query: one preferred customer's decomposition.
//! let probe = dataset.users()[0];
//! let query = PatternQuery::from_fragments(dataset.fragments(probe.id).unwrap())?;
//!
//! // Run DI-matching with one thread per base station.
//! let outcome = run_wbf(
//!     &dataset,
//!     &[query],
//!     &DiMatchingConfig::default(),
//!     ExecutionMode::Threaded,
//!     Some(10),
//! )?;
//! assert!(outcome.ranked.contains(&probe.id));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use dipm_core as core;
pub use dipm_distsim as distsim;
pub use dipm_mobilenet as mobilenet;
pub use dipm_protocol as protocol;
pub use dipm_timeseries as timeseries;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use dipm_core::{
        BloomFilter, CountingWbf, FilterParams, Weight, WeightDiff, WeightSet, WeightedBloomFilter,
    };
    pub use dipm_distsim::{
        CostReport, ExecutionMode, LatencyModel, LatencyReport, StationLatency,
    };
    pub use dipm_mobilenet::{Category, Dataset, StationId, TraceConfig, UserId, UserSpec};
    pub use dipm_protocol::{
        aggregate_and_rank, build_wbf, evaluate, run_bloom, run_naive, run_pipeline, run_streaming,
        run_wbf, AdmissionPolicy, BatchOutcome, Bloom, DiMatchingConfig, EpochBroadcast,
        EpochOutcome, FilterStrategy, HashScheme, Method, Naive, PatternQuery, PipelineOptions,
        QueryOutcome, QueryVerdict, RoutingPolicy, RoutingTree, ScanAlgorithm, SectionGrouping,
        Service, ServiceEpoch, Shards, StationMemory, StreamQueryId, StreamingSession,
        StreamingUpdate, TenantId, Wbf,
    };
    pub use dipm_timeseries::{
        eps_match, AccumulatedPattern, Pattern, SampledPattern, ToleranceMode,
    };
}
