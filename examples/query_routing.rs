//! Query routing in action: the data center prunes base stations through
//! the Bloofi-style summary tree instead of broadcasting to everyone.
//!
//! Sweeps deployment sizes and tree fanouts for two query batches — a
//! *selective* batch (an always-on high-volume profile no generated phone
//! sustains, under position-tagged keys) and a *resident* batch (a real
//! phone's own fragments, which near-clones at every station genuinely
//! match) — and prints how many stations the tree pruned, what the routing
//! control traffic cost, and what the query broadcast weighed against
//! broadcast-to-all. The selective batch prunes; the resident batch shows
//! the tree correctly keeping everyone when everyone can match. Answers are
//! asserted identical either way — `repro routing` measures the same
//! economics at scale.
//!
//! Run with `cargo run --release --example query_routing`.

use dipm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("batch      deployment  fanout  pruned  routing_bytes  query_bytes (broadcast-all)");
    for (users, stations) in [(300usize, 10u32), (600, 24), (1200, 64)] {
        let dataset = Dataset::city_slice(users, stations, 5)?;
        let probe = dataset.users()[0];
        let intervals = dataset.intervals();
        let batches = [
            (
                "whale",
                PatternQuery::from_locals(vec![
                    (0..intervals).map(|_| 300).collect(),
                    (0..intervals).map(|_| 150).collect(),
                ])?,
            ),
            (
                "resident",
                PatternQuery::from_fragments(dataset.fragments(probe.id).unwrap())?,
            ),
        ];
        for (label, query) in &batches {
            let base = DiMatchingConfig {
                hash_scheme: HashScheme::PositionTagged,
                ..DiMatchingConfig::default()
            };
            let broadcast_all = run_wbf(
                &dataset,
                std::slice::from_ref(query),
                &base,
                ExecutionMode::Sequential,
                Some(10),
            )?;

            for fanout in [2usize, 4, 8] {
                let config = DiMatchingConfig {
                    routing: RoutingPolicy::Tree { fanout },
                    ..base.clone()
                };
                let routed = run_wbf(
                    &dataset,
                    std::slice::from_ref(query),
                    &config,
                    ExecutionMode::Sequential,
                    Some(10),
                )?;
                // Routing changes where the filter travels, never what it
                // finds.
                assert_eq!(routed.ranked, broadcast_all.ranked);
                println!(
                    "{label:<9}  {users:>4}u/{stations:>3}st  {fanout:>6}  {:>6}  {:>13}  {:>11} ({})",
                    routed.cost.stations_pruned,
                    routed.cost.routing_bytes,
                    routed.cost.query_bytes,
                    broadcast_all.cost.query_bytes,
                );
            }
        }
    }
    Ok(())
}
