//! Multi-tenant standing queries as a **service**: several departments
//! share one [`Service`] — one executor, one station deployment, one
//! virtual clock — while each keeps its own filter, its own meters and its
//! own epoch counter. The example walks the three guarantees the service
//! layer adds over a solo [`StreamingSession`]:
//!
//! 1. **Multiplexed epochs** — every registered tenant's delta rides the
//!    same service epoch, interleaved over shared station links.
//! 2. **Checkpoint / recovery** — the center crashes mid-run; a fresh
//!    service recovers every tenant from one checkpoint frame plus the
//!    filters the stations retained, and resyncs via deltas instead of
//!    re-broadcasting.
//! 3. **Admission backpressure** — a per-station byte budget defers
//!    over-budget tenants (metered, never dropped), longest-deferred
//!    first.
//!
//! Run with: `cargo run --example tenant_service`
//! (set `DIPM_MODE=seq|threaded|pool:N|async:N` to switch runtimes)

use std::collections::BTreeMap;

use dipm::prelude::*;
use dipm::protocol::{wire, EpochBroadcast};

fn day_snapshot(day: u64) -> Result<Dataset, Box<dyn std::error::Error>> {
    Ok(TraceConfig::new(400, 12)
        .days(1)
        .intervals_per_day(8)
        .seed(300 + day)
        .generate()?)
}

fn print_epoch(day: u64, epoch: &dipm::protocol::ServiceEpoch) {
    for (tenant, outcome) in &epoch.outcomes {
        let broadcast = match outcome.broadcast {
            EpochBroadcast::Full => "full".to_string(),
            EpochBroadcast::Delta { entries } => format!("Δ×{entries}"),
        };
        println!(
            "  day {day}  {tenant:<10} {broadcast:<8} {:>7} matches {:>9.1} KB shipped \
             (rebuild would be {} KB)",
            outcome.outcome.ranked.len(),
            outcome.broadcast_bytes as f64 / 1024.0,
            outcome.rebuild_bytes / 1024,
        );
    }
    for tenant in &epoch.deferred {
        println!("  day {day}  {tenant:<10} deferred (over the per-station byte budget)");
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let day0 = day_snapshot(0)?;
    let query_for = |index: usize| -> Result<PatternQuery, Box<dyn std::error::Error>> {
        let user = day0.users()[index];
        Ok(PatternQuery::from_fragments(
            day0.fragments(user.id).unwrap(),
        )?)
    };
    let config = DiMatchingConfig {
        // Pin geometry with headroom: watch lists churn mid-stream, and
        // recovery insists the pinned geometry matches the checkpoint's.
        fixed_geometry: Some(FilterParams::new(1 << 17, 5)?),
        ..DiMatchingConfig::default()
    };
    let mode = ExecutionMode::from_env(ExecutionMode::Sequential)?;
    let options = PipelineOptions {
        mode,
        shards: Shards::new(2),
        ..PipelineOptions::default()
    };

    // ── 1. Three departments multiplex one service ─────────────────────
    println!("three tenants, one service ({mode:?}):\n");
    let mut service = Service::new(options);
    for (tenant, first_user) in [(TenantId(0), 0), (TenantId(1), 40), (TenantId(2), 80)] {
        let watch: Vec<PatternQuery> = (0..3)
            .map(|i| query_for(first_user + i * 7))
            .collect::<Result<_, _>>()?;
        service.register(tenant, &watch, config.clone())?;
    }
    print_epoch(0, &service.run_epoch(&day0)?);

    // Day 1: tenant 1 edits its watch list; everyone else just rides the
    // day's traffic churn. Each tenant pays only for its own edit.
    let retired = service.session(TenantId(1))?.live_queries()[0];
    service.remove_query(TenantId(1), retired)?;
    service.insert_query(TenantId(1), &query_for(120)?)?;
    println!();
    print_epoch(1, &service.run_epoch(&day_snapshot(1)?)?);

    // ── 2. The center crashes; the stations do not ─────────────────────
    // One frame persists every tenant's center state. The stations keep
    // their filters; recovery resyncs them with deltas, not re-broadcasts.
    let frame = service.checkpoint()?;
    println!(
        "\ncenter crash: {:.1} KB checkpoint persisted",
        frame.len() as f64 / 1024.0
    );
    let mut memories = BTreeMap::new();
    for tenant in service.tenants() {
        let session = service.deregister(tenant)?;
        memories.insert(tenant, session.release_stations());
    }
    drop(service);

    let mut recovered = Service::new(options);
    for (id, tenant_frame) in wire::decode_service_checkpoint(frame)? {
        let tenant = TenantId(id);
        let stations = memories
            .remove(&tenant)
            .expect("stations survive the crash");
        recovered.recover_tenant(tenant, tenant_frame, stations, config.clone())?;
    }
    println!(
        "recovered {} tenants into a fresh center\n",
        recovered.tenants().len()
    );
    let resumed = recovered.run_epoch(&day_snapshot(2)?)?;
    print_epoch(2, &resumed);
    for outcome in resumed.outcomes.values() {
        assert!(
            matches!(outcome.broadcast, EpochBroadcast::Delta { .. })
                && outcome.broadcast_bytes < outcome.rebuild_bytes,
            "recovery must resync via deltas, not re-broadcast"
        );
    }

    // ── 3. Admission backpressure defers, never drops ──────────────────
    // A deliberately tiny budget: only the first tenant on the idle links
    // is admitted each epoch; the other waits, metered, and goes first the
    // next epoch.
    println!("\nbackpressure under a 1-byte per-station budget:\n");
    let mut tight = Service::with_admission(options, AdmissionPolicy::per_station(1));
    tight.register(TenantId(0), &[query_for(0)?], config.clone())?;
    tight.register(TenantId(1), &[query_for(40)?], config.clone())?;
    for day in 0..2u64 {
        print_epoch(day, &tight.run_epoch(&day0)?);
    }
    for tenant in tight.tenants() {
        let report = tight.tenant_report(tenant)?;
        println!(
            "  {tenant}: deferred {} epoch(s), ran epoch(s) up to #{}",
            report.deferred_epochs,
            tight.session(tenant)?.epoch(),
        );
        assert!(
            tight.session(tenant)?.epoch() > 0,
            "deferral must not starve a tenant"
        );
    }

    println!("\neach tenant's bytes and rankings are exactly what it would see running");
    println!("alone; only modeled latency couples them, because concurrent deltas");
    println!("genuinely queue on the shared station links.");
    Ok(())
}

// Compiled under the libtest harness by `cargo test` (the facade manifest
// sets `test = true` for every example), so the example doubles as a
// smoke test of exactly what the docs tell users to run.
#[cfg(test)]
mod tests {
    #[test]
    fn example_runs() {
        super::main().expect("example completes");
    }
}
