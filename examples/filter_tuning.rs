//! Tuning the filter through the real protocol: size the weighted Bloom
//! filter with [`FilterParams`], then sweep the target false-positive rate
//! through the batch [`run_pipeline`] API and watch what a looser or tighter
//! filter costs end to end — broadcast bytes out, candidate reports back,
//! precision after the weight-consistency check (Section IV-B's stitched
//! rejection, measured in the deployed pipeline rather than on a bare
//! filter).
//!
//! Run with: `cargo run --example filter_tuning`
//! (set `DIPM_MODE=seq|threaded|pool:N|async:N` to switch runtimes)

use dipm::mobilenet::ground_truth;
use dipm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Geometry: what does a 1% target cost? -------------------------
    println!("filter geometry for growing key counts at 1% target fpp:");
    println!("{:>10} {:>12} {:>4} {:>12}", "keys", "bits", "k", "KB");
    for n in [1_000usize, 10_000, 100_000] {
        let params = FilterParams::optimal(n, 0.01)?;
        println!(
            "{:>10} {:>12} {:>4} {:>12.1}",
            n,
            params.bits(),
            params.hashes(),
            params.bits() as f64 / 8.0 / 1024.0
        );
    }

    // --- 2. The same dial, end to end -------------------------------------
    // A small city slice and a two-query batch; every pipeline run below
    // broadcasts once, scans each station once, reports once.
    let dataset = TraceConfig::new(300, 10)
        .days(1)
        .intervals_per_day(8)
        .seed(0xBEEF)
        .generate()?;
    let queries: Vec<PatternQuery> = [0usize, 7]
        .iter()
        .map(|&i| {
            let probe = dataset.users()[i];
            PatternQuery::from_fragments(dataset.fragments(probe.id).unwrap())
        })
        .collect::<Result<_, _>>()?;
    let mode = ExecutionMode::from_env(ExecutionMode::Async { workers: 4 })?;

    println!("\nsweeping target fpp through the deployed pipeline (batch of 2):");
    println!(
        "{:>8} {:>14} {:>14} {:>12} {:>12}",
        "fpp", "broadcast KB", "bf candidates", "wbf cands", "wbf precision"
    );
    for target_fpp in [0.1, 0.01, 0.001] {
        let config = DiMatchingConfig {
            target_fpp,
            ..DiMatchingConfig::default()
        };
        let options = PipelineOptions {
            mode,
            shards: Shards::new(2),
            ..PipelineOptions::default()
        };
        let bf = run_pipeline::<Bloom>(&dataset, &queries, &config, &options)?;
        let wbf = run_pipeline::<Wbf>(&dataset, &queries, &config, &options)?;

        // Mean precision over the batch, judged against ε-ground truth.
        let mut precision = 0.0;
        for (query, verdict) in queries.iter().zip(&wbf.queries) {
            let relevant = ground_truth::eps_similar_users(&dataset, query.global(), config.eps);
            precision += evaluate(verdict.retrieved(), &relevant).precision;
        }
        precision /= queries.len() as f64;

        let candidates =
            |batch: &BatchOutcome| -> usize { batch.queries.iter().map(|v| v.ranked.len()).sum() };
        println!(
            "{:>8} {:>14} {:>14} {:>12} {:>12.3}",
            target_fpp,
            wbf.cost.query_bytes / 1024,
            candidates(&bf),
            candidates(&wbf),
            precision,
        );
    }

    println!("\nlooser filters shrink the broadcast but admit more candidates;");
    println!("the weight-consistency layer then pays the cleanup — membership-only");
    println!("BF reports every stitched sequence the filter admits, WBF rejects");
    println!("the ones whose weights cannot sum to a whole user.");
    Ok(())
}

// Compiled under the libtest harness by `cargo test` (the facade manifest
// sets `test = true` for every example), so the example doubles as a
// smoke test of exactly what the docs tell users to run.
#[cfg(test)]
mod tests {
    #[test]
    fn example_runs() {
        super::main().expect("example completes");
    }
}
