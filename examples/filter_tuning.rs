//! Using the core library directly: size a weighted Bloom filter, watch the
//! false-positive bound, and see the weight-consistency check reject the
//! stitched patterns a plain Bloom filter accepts (Section IV-B's example,
//! at scale).
//!
//! Run with: `cargo run --example filter_tuning`

use dipm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Geometry: what does a 1% target cost? -------------------------
    println!("filter geometry for growing key counts at 1% target fpp:");
    println!("{:>10} {:>12} {:>4} {:>12}", "keys", "bits", "k", "KB");
    for n in [1_000usize, 10_000, 100_000] {
        let params = FilterParams::optimal(n, 0.01)?;
        println!(
            "{:>10} {:>12} {:>4} {:>12.1}",
            n,
            params.bits(),
            params.hashes(),
            params.bits() as f64 / 8.0 / 1024.0
        );
    }

    // --- 2. Theory vs observation ----------------------------------------
    let n = 20_000usize;
    let params = FilterParams::optimal(n, 0.01)?;
    let mut bloom = BloomFilter::new(params, 0xBEEF);
    for key in 0..n as u64 {
        bloom.insert(key);
    }
    let probes = 200_000u64;
    let false_positives = (1_000_000..1_000_000 + probes)
        .filter(|&k| bloom.contains(k))
        .count();
    println!(
        "\nclassic bloom at capacity: theoretical fpp {:.4}, observed {:.4}",
        params.false_positive_rate(n),
        false_positives as f64 / probes as f64
    );

    // --- 3. The weighted layer rejects stitched sequences -----------------
    // Insert 200 random-ish "patterns" of 8 values, each under its own
    // weight, then probe stitched sequences mixing two patterns' values.
    let mut wbf = WeightedBloomFilter::new(FilterParams::optimal(200 * 8, 0.01)?, 0xBEEF);
    let pattern = |i: u64| (0..8u64).map(move |j| i * 1_000 + j * 37);
    for i in 0..200u64 {
        let weight = Weight::new(i + 1, 1_000)?;
        for v in pattern(i) {
            wbf.insert(v, weight);
        }
    }

    let mut bloom_accepts = 0u32;
    let mut wbf_accepts = 0u32;
    let trials = 199u64;
    for i in 0..trials {
        // First half from pattern i, second half from pattern i+1: every
        // value is genuinely present, so membership alone accepts.
        let stitched: Vec<u64> = pattern(i).take(4).chain(pattern(i + 1).skip(4)).collect();
        if stitched.iter().all(|&v| wbf.contains(v)) {
            bloom_accepts += 1;
        }
        match wbf.query_sequence(stitched.iter().copied()) {
            Some(set) if !set.is_empty() => wbf_accepts += 1,
            _ => {}
        }
    }
    println!("\nstitched-pattern probes ({trials} trials):");
    println!("  membership only (what a plain BF sees): {bloom_accepts} accepted");
    println!("  weight-consistent (WBF):                {wbf_accepts} accepted");

    // --- 4. What does the weight table cost? ------------------------------
    let plain_bytes = dipm::core::encode::encoded_bloom_len(&bloom);
    let weighted_bytes = dipm::core::encode::encoded_wbf_len(&wbf);
    println!(
        "\nwire sizes: plain bloom (20k keys) {} KB, weighted bloom (1.6k keys) {} KB",
        plain_bytes / 1024,
        weighted_bytes / 1024
    );
    println!("the weight table is the storage premium WBF pays for its precision.");
    Ok(())
}

// Compiled under the libtest harness by `cargo test` (the facade manifest
// sets `test = true` for every example), so the example doubles as a
// smoke test of exactly what the docs tell users to run.
#[cfg(test)]
mod tests {
    #[test]
    fn example_runs() {
        super::main().expect("example completes");
    }
}
