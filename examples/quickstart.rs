//! Quickstart: find the customers whose communication pattern matches a
//! preferred customer's, without shipping any raw data to the data center.
//!
//! Run with: `cargo run --example quickstart`

use dipm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A synthetic city slice: 3000 phones, 16 base stations, two days of
    // traffic at 3-hour resolution. Stands in for the paper's 3.6M-user CDR
    // corpus; same statistical structure, laptop scale.
    let dataset = Dataset::city_slice(3000, 16, 42)?;
    println!(
        "city: {} users, {} stations, {} intervals",
        dataset.users().len(),
        dataset.stations().len(),
        dataset.intervals()
    );

    // The service provider picks a preferred customer and asks: who else
    // communicates like this person? The query is the customer's pattern
    // *decomposition* — their per-station local fragments.
    let preferred = dataset.users()[0];
    let fragments = dataset
        .fragments(preferred.id)
        .expect("every user has traffic");
    println!(
        "query: {} ({}), traffic split over {} stations",
        preferred.id,
        preferred.category,
        fragments.len()
    );
    let query = PatternQuery::from_fragments(fragments)?;

    // Run DI-matching: the query is encoded into one weighted Bloom filter,
    // broadcast to all stations (one thread each), and only (ID, weight)
    // pairs come back.
    let config = DiMatchingConfig::default(); // b = 12, ε = 2, 1% target fpp
    let outcome = run_wbf(
        &dataset,
        std::slice::from_ref(&query),
        &config,
        ExecutionMode::Threaded,
        Some(10),
    )?;

    println!("\ntop-{} matches:", outcome.ranked.len());
    for (rank, user) in outcome.ranked.iter().enumerate() {
        let category = dataset.category_of(*user).expect("known user");
        println!("  {:>2}. {user}  ({category})", rank + 1);
    }

    // How much did it cost? Compare against shipping everything.
    let naive = run_naive(
        &dataset,
        std::slice::from_ref(&query),
        config.eps,
        ExecutionMode::Threaded,
        Some(10),
    )?;
    println!(
        "\ncommunication: wbf {} bytes vs naive {} bytes ({:.1}% of naive)",
        outcome.cost.total_bytes(),
        naive.cost.total_bytes(),
        100.0 * outcome.cost.total_bytes() as f64 / naive.cost.total_bytes() as f64,
    );

    // And how accurate? Score against the simulator's ground truth.
    let relevant =
        dipm::mobilenet::ground_truth::eps_similar_users(&dataset, query.global(), config.eps);
    let score = evaluate(outcome.retrieved(), &relevant);
    println!(
        "precision {:.2}, recall-at-10 {:.2} (relevant set: {} users)",
        score.precision,
        score.recall,
        relevant.len()
    );
    Ok(())
}

// Compiled under the libtest harness by `cargo test` (the facade manifest
// sets `test = true` for every example), so the example doubles as a
// smoke test of exactly what the docs tell users to run.
#[cfg(test)]
mod tests {
    #[test]
    fn example_runs() {
        super::main().expect("example completes");
    }
}
