//! The paper's motivating application (Section I): a mobile operator wants
//! to promote a call-package service. Given a handful of *seed customers*
//! who already bought the package, find every user in the network with a
//! similar communication pattern — one batched pipeline run, one broadcast,
//! one scan pass per station, and a per-seed ranking for each campaign
//! segment.
//!
//! Run with: `cargo run --example call_package_campaign`

use std::collections::BTreeSet;

use dipm::mobilenet::ground_truth;
use dipm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = Dataset::city_slice(900, 20, 7)?;

    // Marketing hands us five seed customers across two target segments.
    let seeds: Vec<UserSpec> = dataset
        .users()
        .iter()
        .filter(|u| matches!(u.category, Category::OfficeWorker | Category::Salesperson))
        .take(5)
        .copied()
        .collect();
    println!("campaign seeds:");
    for seed in &seeds {
        println!("  {} ({})", seed.id, seed.category);
    }

    // All seed decompositions travel in ONE batch: the broadcast carries a
    // per-seed filter section, every station scans its (sharded) store once
    // for the whole batch, and the answer comes back per seed.
    let queries: Vec<PatternQuery> = seeds
        .iter()
        .map(|s| PatternQuery::from_fragments(dataset.fragments(s.id).unwrap()))
        .collect::<Result<_, _>>()?;

    // A campaign casts a slightly wider net than the default ε = 2.
    let config = DiMatchingConfig {
        eps: 3,
        ..Default::default()
    };

    // Ground truth: anyone ε-similar to at least one seed's global pattern.
    let mut relevant = BTreeSet::new();
    for q in &queries {
        relevant.extend(ground_truth::eps_similar_users(
            &dataset,
            q.global(),
            config.eps,
        ));
    }

    // The deployment shape: four shards per station, multiplexed over a
    // worker pool half the station count.
    let options = PipelineOptions {
        mode: ExecutionMode::ThreadPool { workers: 10 },
        shards: Shards::new(4),
        top_k: Some(relevant.len()),
        ..PipelineOptions::default()
    };
    let batch = run_pipeline::<Wbf>(&dataset, &queries, &config, &options)?;

    println!("\nper-seed audiences (one scan pass per station for all of them):");
    for (seed, verdict) in seeds.iter().zip(&batch.queries) {
        println!("  seed {}: {} matches", seed.id, verdict.ranked.len());
    }

    // The campaign view: everyone matching any seed, best score first.
    let outcome = batch.into_merged(Some(relevant.len()));
    let score = evaluate(outcome.retrieved(), &relevant);

    println!(
        "\naudience found: {} users (of {} truly similar)",
        outcome.ranked.len(),
        relevant.len()
    );
    println!(
        "precision {:.3}, recall {:.3}, f1 {:.3}",
        score.precision,
        score.recall,
        score.f1()
    );

    // Segment breakdown of the retrieved audience.
    for category in Category::ALL {
        let hits = outcome
            .ranked
            .iter()
            .filter(|u| dataset.category_of(**u) == Some(category))
            .count();
        if hits > 0 {
            println!("  {category}: {hits} users");
        }
    }

    println!(
        "\ncost: {} KB moved, {} KB stored, {} messages, {} scan passes for {} seeds over {} stations",
        outcome.cost.total_bytes() / 1024,
        outcome.cost.storage_bytes / 1024,
        outcome.cost.messages,
        outcome.cost.scan_passes,
        seeds.len(),
        dataset.stations().len(),
    );
    assert_eq!(outcome.cost.scan_passes as usize, dataset.stations().len());
    Ok(())
}

// Compiled under the libtest harness by `cargo test` (the facade manifest
// sets `test = true` for every example), so the example doubles as a
// smoke test of exactly what the docs tell users to run.
#[cfg(test)]
mod tests {
    #[test]
    fn example_runs() {
        super::main().expect("example completes");
    }
}
