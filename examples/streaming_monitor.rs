//! Continuous monitoring (Section III-A's running example): the searching
//! query runs against *evolving* data — each day brings new traffic, and the
//! service provider wants near-real-time feedback without re-shipping the
//! corpus. Here we replay four consecutive days, rebuild nothing at the
//! stations (they only re-scan their local stores against the same broadcast
//! filter), and watch the audience drift.
//!
//! Run with: `cargo run --example streaming_monitor`

use std::collections::BTreeSet;

use dipm::mobilenet::ground_truth;
use dipm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Day 0 defines the query: a known night-shift worker's decomposition.
    let day0 = TraceConfig::new(400, 12)
        .days(1)
        .intervals_per_day(8)
        .seed(100)
        .generate()?;
    let target = day0
        .users()
        .iter()
        .find(|u| u.category == Category::NightShift)
        .copied()
        .expect("night-shift users exist");
    let query = PatternQuery::from_fragments(day0.fragments(target.id).unwrap())?;
    println!(
        "monitoring for patterns like {} ({})\n",
        target.id, target.category
    );

    let config = DiMatchingConfig::default();
    println!(
        "{:<6} {:>8} {:>10} {:>10} {:>8}",
        "day", "matches", "precision", "recall", "KB"
    );

    let mut yesterday: BTreeSet<UserId> = BTreeSet::new();
    for day in 0..4u64 {
        // Each day the stations' stores hold that day's fresh traffic
        // (same population and routines, new jitter — the paper's
        // "dynamic evolving data" characteristic).
        let snapshot = TraceConfig::new(400, 12)
            .days(1)
            .intervals_per_day(8)
            .seed(100 + day)
            .generate()?;

        let relevant = ground_truth::eps_similar_users(&snapshot, query.global(), config.eps);
        let outcome = run_wbf(
            &snapshot,
            std::slice::from_ref(&query),
            &config,
            ExecutionMode::Threaded,
            Some(relevant.len()), // top-K query semantics
        )?;
        let score = evaluate(outcome.retrieved(), &relevant);

        let today: BTreeSet<UserId> = outcome.ranked.iter().copied().collect();
        let churn_in = today.difference(&yesterday).count();
        let churn_out = yesterday.difference(&today).count();

        println!(
            "{:<6} {:>8} {:>10.3} {:>10.3} {:>8}",
            day,
            outcome.ranked.len(),
            score.precision,
            score.recall,
            outcome.cost.total_bytes() / 1024,
        );
        if day > 0 {
            println!("       audience churn: +{churn_in} / -{churn_out}");
        }
        yesterday = today;
    }

    println!("\nthe filter is built once; each day's scan reuses the broadcast,");
    println!("so daily monitoring costs only the station scans plus tiny reports.");
    Ok(())
}

// Compiled under the libtest harness by `cargo test` (the facade manifest
// sets `test = true` for every example), so the example doubles as a
// smoke test of exactly what the docs tell users to run.
#[cfg(test)]
mod tests {
    #[test]
    fn example_runs() {
        super::main().expect("example completes");
    }
}
