//! Continuous monitoring (Section III-A's running example): the searching
//! query runs against *evolving* data — each day brings new traffic, and the
//! service provider wants near-real-time feedback without re-shipping the
//! corpus. Here we replay four consecutive days through the batch
//! [`run_pipeline`] API on the async station runtime: stations rebuild
//! nothing (they only re-scan their local stores against the same broadcast
//! filter), reports stream back in virtual-time order, and the daily
//! feedback deadline is the modeled makespan — not a wall clock.
//!
//! Run with: `cargo run --example streaming_monitor`
//! (set `DIPM_MODE=seq|threaded|pool:N|async:N` to switch runtimes)

use std::collections::BTreeSet;

use dipm::mobilenet::ground_truth;
use dipm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Day 0 defines the query: a known night-shift worker's decomposition.
    let day0 = TraceConfig::new(400, 12)
        .days(1)
        .intervals_per_day(8)
        .seed(100)
        .generate()?;
    let target = day0
        .users()
        .iter()
        .find(|u| u.category == Category::NightShift)
        .copied()
        .expect("night-shift users exist");
    let query = PatternQuery::from_fragments(day0.fragments(target.id).unwrap())?;
    println!(
        "monitoring for patterns like {} ({})\n",
        target.id, target.category
    );

    let config = DiMatchingConfig::default();
    // Async by default: thousands of monitored stations would not get one OS
    // thread each. A 25 ms metro round trip at gigabit-ish throughput,
    // 1 µs-tick flavour; every run models the same deadlines.
    let mode = ExecutionMode::from_env(ExecutionMode::Async { workers: 4 });
    let options = PipelineOptions {
        mode,
        shards: Shards::new(2),
        latency: LatencyModel {
            base_ticks: 25_000,
            ticks_per_byte: 8,
            ticks_per_row: 40,
            jitter_ticks: 5_000,
            seed: 100,
        },
        ..PipelineOptions::default()
    };
    println!(
        "{:<6} {:>8} {:>10} {:>10} {:>8} {:>14}",
        "day", "matches", "precision", "recall", "KB", "makespan"
    );

    let mut yesterday: BTreeSet<UserId> = BTreeSet::new();
    for day in 0..4u64 {
        // Each day the stations' stores hold that day's fresh traffic
        // (same population and routines, new jitter — the paper's
        // "dynamic evolving data" characteristic).
        let snapshot = TraceConfig::new(400, 12)
            .days(1)
            .intervals_per_day(8)
            .seed(100 + day)
            .generate()?;

        let relevant = ground_truth::eps_similar_users(&snapshot, query.global(), config.eps);
        let batch = run_pipeline::<Wbf>(
            &snapshot,
            std::slice::from_ref(&query),
            &config,
            &PipelineOptions {
                top_k: Some(relevant.len()), // top-K query semantics
                ..options
            },
        )?;
        let makespan = match &batch.latency {
            // ~1 µs ticks under the model above ⇒ milliseconds for print.
            Some(latency) => format!("{:.1} ms", latency.makespan_ticks as f64 / 1000.0),
            None => "(not modeled)".to_string(),
        };
        let cost = batch.cost;
        let outcome = batch.into_merged(Some(relevant.len()));
        let score = evaluate(outcome.retrieved(), &relevant);

        let today: BTreeSet<UserId> = outcome.ranked.iter().copied().collect();
        let churn_in = today.difference(&yesterday).count();
        let churn_out = yesterday.difference(&today).count();

        println!(
            "{:<6} {:>8} {:>10.3} {:>10.3} {:>8} {:>14}",
            day,
            outcome.ranked.len(),
            score.precision,
            score.recall,
            cost.total_bytes() / 1024,
            makespan,
        );
        if day > 0 {
            println!("       audience churn: +{churn_in} / -{churn_out}");
        }
        yesterday = today;
    }

    println!("\nthe filter is built once; each day's scan reuses the broadcast, so");
    println!("daily monitoring costs only the station scans plus tiny reports —");
    println!("and the virtual clock prices the feedback deadline before deploying.");
    Ok(())
}

// Compiled under the libtest harness by `cargo test` (the facade manifest
// sets `test = true` for every example), so the example doubles as a
// smoke test of exactly what the docs tell users to run.
#[cfg(test)]
mod tests {
    #[test]
    fn example_runs() {
        super::main().expect("example completes");
    }
}
