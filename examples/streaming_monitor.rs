//! Continuous monitoring (Section III-A's running example) on the **real
//! incremental path**: a [`StreamingSession`] keeps a standing watch list
//! alive across days. The filter is built and broadcast **once**; every
//! following day ships only a delta — near-empty for pure traffic churn,
//! and just the changed counter positions when the watch list itself
//! changes. Compare each day's `delta KB` against `rebuild KB` (what the
//! old build-once architecture would re-broadcast daily) to see the
//! economics: delta wins as long as the day's churn is a small fraction of
//! the standing set.
//!
//! Run with: `cargo run --example streaming_monitor`
//! (set `DIPM_MODE=seq|threaded|pool:N|async:N` to switch runtimes)

use std::collections::BTreeSet;

use dipm::mobilenet::ground_truth;
use dipm::prelude::*;
use dipm::protocol::{EpochBroadcast, StreamingSession};

fn day_snapshot(day: u64) -> Result<Dataset, Box<dyn std::error::Error>> {
    // Each day the stations' stores hold that day's fresh traffic (same
    // population and routines, new jitter — the paper's "dynamic evolving
    // data" characteristic).
    Ok(TraceConfig::new(400, 12)
        .days(1)
        .intervals_per_day(8)
        .seed(100 + day)
        .generate()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Day 0 defines the standing watch list: the decompositions of five
    // users across distinct routine categories (same-category routines are
    // so alike that their banded keys fully overlap — a mixed list keeps
    // each watch-list edit an honest delta).
    let day0 = day_snapshot(0)?;
    let suspects: Vec<UserSpec> = day0.users()[..5].to_vec();
    let query_for = |user: &UserSpec| -> Result<PatternQuery, Box<dyn std::error::Error>> {
        Ok(PatternQuery::from_fragments(
            day0.fragments(user.id).unwrap(),
        )?)
    };
    let initial: Vec<PatternQuery> = suspects[..4]
        .iter()
        .map(query_for)
        .collect::<Result<_, _>>()?;
    println!(
        "watching {} patterns across categories (e.g. {} the {})\n",
        initial.len(),
        suspects[0].id,
        suspects[0].category,
    );

    let config = DiMatchingConfig {
        // Pin geometry with headroom: the watch list grows mid-stream, and
        // a streaming filter cannot resize without a rebuild.
        fixed_geometry: Some(FilterParams::new(1 << 17, 5)?),
        ..DiMatchingConfig::default()
    };
    // Async by default: thousands of monitored stations would not get one OS
    // thread each. A 25 ms metro round trip at gigabit-ish throughput,
    // 1 µs-tick flavour; every run models the same deadlines, and the
    // virtual clock keeps ticking across days.
    let mode = ExecutionMode::from_env(ExecutionMode::Async { workers: 4 })?;
    let options = PipelineOptions {
        mode,
        shards: Shards::new(2),
        latency: LatencyModel {
            base_ticks: 25_000,
            ticks_per_byte: 8,
            ticks_per_row: 40,
            jitter_ticks: 5_000,
            seed: 100,
        },
        ..PipelineOptions::default()
    };
    let mut session = StreamingSession::new(&initial, config, options)?;
    let mut watched: Vec<PatternQuery> = initial;
    println!(
        "{:<6} {:<10} {:>8} {:>10} {:>10} {:>9} {:>10} {:>12}",
        "day", "broadcast", "matches", "precision", "recall", "delta KB", "rebuild KB", "makespan"
    );

    let mut yesterday: BTreeSet<UserId> = BTreeSet::new();
    let mut extra_watch = None;
    for day in 0..4u64 {
        // Day 2 extends the watch list by one suspect of a new category;
        // day 3 retires the addition again. Both edits travel as deltas,
        // not rebuilds — roughly a fifth of the standing set each.
        if day == 2 {
            let extra = query_for(&suspects[4])?;
            extra_watch = Some(session.insert_query(&extra)?);
            watched.push(extra);
        }
        if day == 3 {
            session.remove_query(extra_watch.take().expect("inserted on day 2"))?;
            watched.pop();
        }

        // Day 0's snapshot already exists (it defined the watch list).
        let fresh;
        let snapshot: &Dataset = if day == 0 {
            &day0
        } else {
            fresh = day_snapshot(day)?;
            &fresh
        };
        let eps = DiMatchingConfig::default().eps;
        let mut relevant: BTreeSet<UserId> = BTreeSet::new();
        for query in &watched {
            relevant.extend(ground_truth::eps_similar_users(
                snapshot,
                query.global(),
                eps,
            ));
        }
        let epoch = session.run_epoch(snapshot)?;
        let makespan = match &epoch.latency {
            // ~1 µs ticks under the model above ⇒ milliseconds for print.
            Some(latency) => format!("{:.1} ms", latency.makespan_ticks as f64 / 1000.0),
            None => "(unmodeled)".to_string(),
        };
        let broadcast = match epoch.broadcast {
            EpochBroadcast::Full => "full".to_string(),
            EpochBroadcast::Delta { entries } => format!("Δ×{entries}"),
        };
        let outcome = &epoch.outcome;
        let score = evaluate(outcome.retrieved(), &relevant);

        let today: BTreeSet<UserId> = outcome.ranked.iter().copied().collect();
        let churn_in = today.difference(&yesterday).count();
        let churn_out = yesterday.difference(&today).count();

        println!(
            "{:<6} {:<10} {:>8} {:>10.3} {:>10.3} {:>9.1} {:>10} {:>12}",
            day,
            broadcast,
            outcome.ranked.len(),
            score.precision,
            score.recall,
            epoch.broadcast_bytes as f64 / 1024.0,
            epoch.rebuild_bytes / 1024,
            makespan,
        );
        if day > 0 {
            println!("       audience churn: +{churn_in} / -{churn_out}");
        }
        if matches!(epoch.broadcast, EpochBroadcast::Delta { .. }) {
            assert!(
                epoch.broadcast_bytes < epoch.rebuild_bytes,
                "a small watch-list edit must beat a rebuild"
            );
        }
        yesterday = today;
    }

    println!("\nthe filter is broadcast once; every later day ships only the changed");
    println!("counter positions — pure traffic churn is a near-empty delta, and even");
    println!("a one-in-five watch-list edit undercuts the daily rebuild the");
    println!("build-once architecture paid.");
    Ok(())
}

// Compiled under the libtest harness by `cargo test` (the facade manifest
// sets `test = true` for every example), so the example doubles as a
// smoke test of exactly what the docs tell users to run.
#[cfg(test)]
mod tests {
    #[test]
    fn example_runs() {
        super::main().expect("example completes");
    }
}
