//! Offline stub of the [`bytes`](https://docs.rs/bytes) crate.
//!
//! Implements the subset of the API this workspace uses: cheaply cloneable
//! immutable [`Bytes`] slices backed by `Arc<[u8]>`, a growable
//! [`BytesMut`] builder, and the little-endian integer accessors of the
//! [`Buf`]/[`BufMut`] traits. Reads consume the buffer from the front,
//! exactly like the real crate.

#![forbid(unsafe_code)]

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes::from_static(b"")
    }

    /// Wraps a static byte slice without copying it.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes {
            data: Arc::from(bytes),
            start: 0,
            end: bytes.len(),
        }
    }

    /// The number of bytes remaining.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a slice of self for the provided range, sharing the
    /// underlying allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(begin <= end, "slice range inverted: {begin} > {end}");
        assert!(
            end <= self.len(),
            "slice end {end} beyond length {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Copies the remaining bytes into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        let end = data.len();
        Bytes {
            data: Arc::from(data),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(data: &'static [u8]) -> Bytes {
        Bytes::from_static(data)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            write!(f, "{}", std::ascii::escape_default(b))?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Creates an empty buffer with at least `capacity` bytes reserved.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// The number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a byte slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BytesMut")
            .field("len", &self.len())
            .finish()
    }
}

/// Read access to a buffer of bytes, consuming from the front.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The next `cnt` bytes, which must be available.
    fn take_bytes(&mut self, cnt: usize) -> &[u8];

    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize) {
        self.take_bytes(cnt);
    }

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is exhausted (as in the real crate).
    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_bytes(2).try_into().expect("2 bytes"))
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_bytes(4).try_into().expect("4 bytes"))
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_bytes(8).try_into().expect("8 bytes"))
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_bytes(&mut self, cnt: usize) -> &[u8] {
        assert!(cnt <= self.len(), "buffer exhausted");
        let start = self.start;
        self.start += cnt;
        &self.data[start..start + cnt]
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, n: u8) {
        self.put_slice(&[n]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, n: u16) {
        self.put_slice(&n.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, n: u32) {
        self.put_slice(&n.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, n: u64) {
        self.put_slice(&n.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ints() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u16_le(300);
        buf.put_u32_le(70_000);
        buf.put_u64_le(u64::MAX - 1);
        let mut bytes = buf.freeze();
        assert_eq!(bytes.remaining(), 15);
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u16_le(), 300);
        assert_eq!(bytes.get_u32_le(), 70_000);
        assert_eq!(bytes.get_u64_le(), u64::MAX - 1);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4]);
        let s = b.slice(1..4);
        assert_eq!(s.as_ref(), &[1, 2, 3]);
        let s2 = s.slice(0..2);
        assert_eq!(s2.as_ref(), &[1, 2]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    #[should_panic(expected = "buffer exhausted")]
    fn overread_panics() {
        let mut b = Bytes::from(vec![1]);
        let _ = b.get_u16_le();
    }
}
