//! Offline stub of the [`crossbeam`](https://docs.rs/crossbeam) crate.
//!
//! `thread::scope` is implemented over `std::thread::scope` and
//! `channel::unbounded` over `std::sync::mpsc`, preserving the crossbeam
//! API shapes this workspace uses (spawn closures receive the scope;
//! `scope` returns a `Result`).

#![forbid(unsafe_code)]

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    /// A scope for spawning threads that borrow from the caller's stack.
    #[derive(Debug)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to join one scoped thread.
    #[derive(Debug)]
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its panic payload if
        /// it panicked.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives
        /// the scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope for spawning borrowing threads.
    ///
    /// Unlike crossbeam, a child-thread panic that the caller never joins
    /// propagates as a panic (via `std::thread::scope`) rather than an
    /// `Err`; callers that join every handle observe identical behaviour.
    ///
    /// # Errors
    ///
    /// Never returns `Err` in this stub (see above).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

/// Multi-producer channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::sync::{mpsc, Mutex};

    /// The sending half of an unbounded channel.
    #[derive(Debug, Clone)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    /// The receiving half of an unbounded channel.
    ///
    /// Crossbeam receivers are `Sync`; `mpsc`'s are not, so the stub locks
    /// a mutex around each receive (uncontended in this workspace, where
    /// every mailbox has one consumer at a time).
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: Mutex<mpsc::Receiver<T>>,
    }

    /// Error returned when sending into a channel whose receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when receiving from an empty, disconnected channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders are gone and the channel is empty.
        Disconnected,
    }

    impl<T> Sender<T> {
        /// Sends a value, failing only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        fn with_inner<R>(&self, f: impl FnOnce(&mpsc::Receiver<T>) -> R) -> R {
            f(&self
                .inner
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner()))
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.with_inner(|rx| rx.try_recv()).map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Receives, blocking until a value arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.with_inner(|rx| rx.recv()).map_err(|_| RecvError)
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { inner: tx },
            Receiver {
                inner: Mutex::new(rx),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_spawn_join() {
        let data = [1u64, 2, 3];
        let sum = super::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&v| s.spawn(move |_| v * 2)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(sum, 12);
    }

    #[test]
    fn channel_roundtrip() {
        let (tx, rx) = super::channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert!(rx.try_recv().is_err());
    }
}
