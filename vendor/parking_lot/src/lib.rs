//! Offline stub of the [`parking_lot`](https://docs.rs/parking_lot) crate.
//!
//! A [`Mutex`] with parking_lot's infallible `lock()` signature, backed by
//! `std::sync::Mutex`; poisoning is ignored, matching parking_lot's
//! panic-transparent behaviour.

#![forbid(unsafe_code)]

use std::sync::{Mutex as StdMutex, MutexGuard};

/// A mutual-exclusion primitive whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available. Unlike `std`, a panic
    /// in a previous holder does not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
