//! Offline stub of the [`proptest`](https://docs.rs/proptest) crate.
//!
//! Implements the subset of the API this workspace uses: the [`proptest!`]
//! macro (with an optional `#![proptest_config(...)]` header), integer
//! range and tuple strategies, [`arbitrary::any`], [`collection::vec`],
//! [`strategy::Strategy::prop_map`], [`sample::Index`], and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from the real crate:
//!
//! * **No shrinking** — a failing case reports its seed-derived inputs via
//!   the assertion message only.
//! * The RNG seed is derived from the test's module path and name, so runs
//!   are deterministic across processes. Set `PROPTEST_CASES` to override
//!   the default case count.

#![forbid(unsafe_code)]

/// Test-runner configuration and plumbing shared with the macros.
pub mod test_runner {
    /// How a single generated case ended.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!`; try another input.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Creates a rejection.
        pub fn reject(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(reason.into())
        }

        /// Creates a failure.
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(message.into())
        }
    }

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases each test must pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` accepted cases per test.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    /// Deterministic SplitMix64 generator feeding every strategy.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from an arbitrary label (the test name).
        pub fn for_test(label: &str) -> TestRng {
            use std::hash::{Hash, Hasher};
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            label.hash(&mut hasher);
            TestRng {
                state: hasher.finish() | 1,
            }
        }

        /// The next uniform 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)` without modulo bias.
        ///
        /// # Panics
        ///
        /// Panics if `bound` is zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty sample range");
            let zone = u64::MAX - (u64::MAX % bound);
            loop {
                let raw = self.next_u64();
                if raw < zone {
                    return raw % bound;
                }
            }
        }

        /// Uniform value in the inclusive span `[low, high]` over i128 to
        /// cover every primitive integer width.
        pub fn in_span(&mut self, low: i128, high: i128) -> i128 {
            assert!(low <= high, "empty sample range");
            let span = (high - low) as u128;
            if span == u128::from(u64::MAX) {
                return low + i128::from(self.next_u64());
            }
            low + i128::from(self.below(span as u64 + 1))
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `map`.
        fn prop_map<O, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, map }
        }
    }

    /// Strategies boxed behind a reference still generate.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    /// A strategy that always yields clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.in_span(self.start as i128, self.end as i128 - 1) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.in_span(*self.start() as i128, *self.end() as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($S:ident : $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A: 0);
    tuple_strategy!(A: 0, B: 1);
    tuple_strategy!(A: 0, B: 1, C: 2);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

/// `any::<T>()` and the [`Arbitrary`](arbitrary::Arbitrary) trait.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Draws one uniform value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length range for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> SizeRange {
            SizeRange {
                min: exact,
                max: exact,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> SizeRange {
            assert!(range.start < range.end, "empty size range");
            SizeRange {
                min: range.start,
                max: range.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(range: RangeInclusive<usize>) -> SizeRange {
            assert!(range.start() <= range.end(), "empty size range");
            SizeRange {
                min: *range.start(),
                max: *range.end(),
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.in_span(self.size.min as i128, self.size.max as i128) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `Vec`s whose length lies in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Sampling helpers (`prop::sample`).
pub mod sample {
    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// An index into a collection whose length is only known at use time.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Projects onto `[0, len)`.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

/// Module-path mirror of the real crate's `prop` hierarchy, so
/// `prop::sample::Index` resolves after a prelude glob import.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// The glob-import surface used by tests.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// becomes a normal `#[test]` running `cases` accepted random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr)
      $( #[test] fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let strategies = ( $($strat,)+ );
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(16).max(1024);
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "proptest '{}': too many rejected cases ({accepted} accepted of {} wanted)",
                        stringify!($name),
                        config.cases,
                    );
                    let ( $($arg,)+ ) =
                        $crate::strategy::Strategy::generate(&strategies, &mut rng);
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => continue,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(message),
                        ) => panic!(
                            "proptest '{}' failed at case {accepted}: {message}",
                            stringify!($name)
                        ),
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        match (&$left, &$right) {
            (__pt_left, __pt_right) => {
                if !(*__pt_left == *__pt_right) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                            stringify!($left),
                            stringify!($right),
                            __pt_left,
                            __pt_right,
                        ),
                    ));
                }
            }
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        match (&$left, &$right) {
            (__pt_left, __pt_right) => {
                if !(*__pt_left == *__pt_right) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!($($fmt)+),
                    ));
                }
            }
        }
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        match (&$left, &$right) {
            (__pt_left, __pt_right) => {
                if *__pt_left == *__pt_right {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: {} != {}\n  both: {:?}",
                            stringify!($left),
                            stringify!($right),
                            __pt_left,
                        ),
                    ));
                }
            }
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 3u64..10, (a, b) in (0i64..=0, -2i64..=2)) {
            prop_assert!((3..10).contains(&x));
            prop_assert_eq!(a, 0);
            prop_assert!((-2..=2).contains(&b));
        }

        #[test]
        fn vec_and_map(xs in prop::collection::vec((0u8..5).prop_map(|v| v * 2), 1..4)) {
            prop_assert!(!xs.is_empty() && xs.len() < 4);
            prop_assert!(xs.iter().all(|v| v % 2 == 0 && *v < 10));
        }

        #[test]
        fn assume_rejects(x in 0u32..4) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }

        #[test]
        fn index_projects(ix in any::<prop::sample::Index>()) {
            prop_assert!(ix.index(7) < 7);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let strat = crate::collection::vec(0u64..100, 2..6);
        let mut a = crate::test_runner::TestRng::for_test("same");
        let mut b = crate::test_runner::TestRng::for_test("same");
        for _ in 0..20 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
