//! Offline stub of the [`rand`](https://docs.rs/rand) crate.
//!
//! Provides a deterministic [`rngs::StdRng`] (SplitMix64, not upstream's
//! ChaCha12 — seeded streams therefore differ from the real crate) and the
//! [`Rng`]/[`SeedableRng`] trait subset the workspace uses: `gen_range`
//! over integer ranges, `gen_bool`, and `gen` for primitive integers.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniform value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// The raw 64-bit source behind the [`Rng`] helpers.
pub trait RngCore {
    /// The next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Bounded uniform sampling, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive integer
    /// ranges).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, B>(&mut self, range: B) -> T
    where
        T: UniformInt,
        B: IntoBounds<T>,
    {
        let (low, high_inclusive) = range.into_bounds();
        T::sample_inclusive(self, low, high_inclusive)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 uniform mantissa bits, the same construction the real crate uses.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Draws one uniform value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Integer types [`Rng::gen_range`] can sample.
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform sample from the inclusive range `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Conversion from range syntax to inclusive bounds.
pub trait IntoBounds<T> {
    /// The `(low, high_inclusive)` pair, panicking on empty ranges.
    fn into_bounds(self) -> (T, T);
}

macro_rules! impl_uniform {
    ($($t:ty as $wide:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "empty sample range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $wide as $t;
                }
                // Rejection sampling over a multiple of span+1 avoids
                // modulo bias.
                let bound = span + 1;
                let zone = u64::MAX - (u64::MAX % bound);
                loop {
                    let raw = rng.next_u64();
                    if raw < zone {
                        return ((low as $wide).wrapping_add((raw % bound) as $wide)) as $t;
                    }
                }
            }
        }

        impl IntoBounds<$t> for Range<$t> {
            fn into_bounds(self) -> ($t, $t) {
                assert!(self.start < self.end, "empty sample range");
                (self.start, self.end - 1)
            }
        }

        impl IntoBounds<$t> for RangeInclusive<$t> {
            fn into_bounds(self) -> ($t, $t) {
                (*self.start(), *self.end())
            }
        }

        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $wide as $t
            }
        }
    )*};
}

impl_uniform!(
    u8 as u64,
    u16 as u64,
    u32 as u64,
    u64 as u64,
    usize as u64,
    i8 as i64,
    i16 as i64,
    i32 as i64,
    i64 as i64,
    isize as i64
);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The stub's standard generator: SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // Mix the seed (the real crate does too). Without this, seeds
            // that differ by multiples of the SplitMix64 gamma — exactly
            // how dipm-mobilenet derives per-user seeds — would yield
            // shifted copies of one stream instead of independent ones.
            let mut z = seed.wrapping_add(0xa076_1d64_78bd_642f);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            StdRng {
                state: z ^ (z >> 31),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&w));
        }
    }

    #[test]
    fn signed_range_hits_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..10_000 {
            seen.insert(rng.gen_range(-1i64..=1));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn gamma_related_seeds_are_decorrelated() {
        // Per-user seeds in dipm-mobilenet differ by multiples of the
        // SplitMix64 gamma; unmixed seeding would make those streams
        // shifted copies of each other.
        let mut a = StdRng::seed_from_u64(0);
        let mut b = StdRng::seed_from_u64(0x9e37_79b9_7f4a_7c15);
        let _ = a.gen_range(0u64..u64::MAX); // advance a by one step
        let matches = (0..64)
            .filter(|_| a.gen_range(0u64..1000) == b.gen_range(0u64..1000))
            .count();
        assert!(
            matches < 16,
            "streams look like shifted copies: {matches}/64"
        );
    }
}
