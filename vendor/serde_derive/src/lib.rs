//! Offline stub of the `serde_derive` proc-macro crate.
//!
//! The derives emit no code: the stub `serde` crate provides blanket
//! implementations of its marker traits, so `#[derive(Serialize)]` only
//! needs to be *accepted*, not expanded. This keeps `#[cfg_attr(feature =
//! "serde", derive(serde::Serialize, serde::Deserialize))]` compiling in
//! both feature configurations without a network-fetched syn/quote stack.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
