//! Offline stub of the [`criterion`](https://docs.rs/criterion) crate.
//!
//! Benchmarks compile and run, timing each routine with `Instant` over a
//! fixed wall-clock budget and printing one mean-time line per benchmark.
//! No statistics, baselines, or HTML reports.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock budget spent measuring each benchmark function.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);

/// How batched inputs are grouped; accepted for API compatibility, the
/// stub always materialises one input per routine call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Times closures handed to [`Criterion::bench_function`].
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Times `routine`, called repeatedly until the measurement budget is
    /// spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let budget_end = Instant::now() + MEASURE_BUDGET;
        loop {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
            if Instant::now() >= budget_end {
                break;
            }
        }
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let budget_end = Instant::now() + MEASURE_BUDGET;
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
            if Instant::now() >= budget_end {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name}: no iterations");
            return;
        }
        let mean_ns = self.total.as_nanos() / u128::from(self.iters);
        println!("{name}: {mean_ns} ns/iter ({} iters)", self.iters);
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API compatibility; the stub is time-budgeted, not
    /// sample-counted.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Runs and reports one benchmark in this group.
    pub fn bench_function<R>(&mut self, id: impl Into<String>, f: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.run_one(&full, f);
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs and reports one stand-alone benchmark.
    pub fn bench_function<R>(&mut self, id: impl Into<String>, f: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id, f);
        self
    }

    fn run_one<R: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: R) {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        bencher.report(name);
    }
}

/// Declares a benchmark entry point collecting the given functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_routines() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut calls = 0u64;
        group.sample_size(10).bench_function("count", |b| {
            b.iter(|| calls += 1);
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| 2u64, |v| v * 2, BatchSize::SmallInput);
        });
        group.finish();
        assert!(calls > 0);
    }
}
