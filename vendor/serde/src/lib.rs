//! Offline stub of the [`serde`](https://docs.rs/serde) crate.
//!
//! The workspace only uses serde through feature-gated derive attributes
//! (`#[cfg_attr(feature = "serde", derive(serde::Serialize, ...))]`), so
//! this stub supplies marker traits satisfied by blanket implementations
//! plus no-op derive macros. The derive macro and the trait share each
//! name (macro vs. type namespace), exactly as in the real crate, so both
//! `#[derive(serde::Serialize)]` and `T: serde::Serialize` bounds
//! typecheck; no actual serialization format is provided.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
